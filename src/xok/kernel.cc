#include "xok/kernel.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "udf/verifier.h"
#include "udf/vm.h"

namespace exo::xok {

namespace {

CapName EnvGuardName(EnvId id) {
  return CapName{kCapEnvs, static_cast<uint16_t>(id >> 16), static_cast<uint16_t>(id & 0xffff)};
}

// Idle-clock tick when every environment is blocked and no device events are pending.
constexpr sim::Cycles kIdleTick = 20'000;  // 100 us at 200 MHz

}  // namespace

XokKernel::XokKernel(hw::Machine* machine) : machine_(machine) {
  syscall_counter_ = machine_->counters().Handle("xok.syscalls");
  ctx_switch_counter_ = machine_->counters().Handle("xok.context_switches");
  fault_counter_ = machine_->counters().Handle("xok.page_faults");
  predicate_eval_counter_ = machine_->counters().Handle("xok.predicate_evals");
  predicate_skip_counter_ = machine_->counters().Handle("xok.predicate_skips");
  demux_counter_ = machine_->counters().Handle("xok.packets_demuxed");
  demux_hit_counter_ = machine_->counters().Handle("xok.demux_hits");
  demux_miss_counter_ = machine_->counters().Handle("xok.demux_misses");
  unclaimed_counter_ = machine_->counters().Handle("xok.packets_unclaimed");
  ring_drop_counter_ = machine_->counters().Handle("xok.ring_drops");
  ipc_rejected_counter_ = machine_->counters().Handle("xok.rejected");
  orphan_reap_counter_ = machine_->counters().Handle("xok.orphans_reaped");
  stride_pick_counter_ = machine_->counters().Handle("sched.stride_picks");
  wake_jump_counter_ = machine_->counters().Handle("sched.wake_pass_jumps");
  pressure_revoke_counter_ = machine_->counters().Handle("xok.pressure_revokes");
  pressure_abort_counter_ = machine_->counters().Handle("xok.pressure_aborts");
  // Compatibility switch: EXO_SCHED_STRIDE=0 recovers the legacy round-robin
  // rotation bit-exactly (same idiom as EXO_DISK_INTEGRITY in hw/machine.h).
  const char* stride = std::getenv("EXO_SCHED_STRIDE");
  stride_on_ = !(stride != nullptr && stride[0] == '0' && stride[1] == '\0');
  // EXO_DEMUX_CACHE=0 recovers the linear per-packet filter walk.
  const char* demux = std::getenv("EXO_DEMUX_CACHE");
  demux_cache_on_ = !(demux != nullptr && demux[0] == '0' && demux[1] == '\0');
  tracer_ = &machine_->tracer();
  trace_track_ = tracer_->NewTrack("kernel");
  syscall_hist_ = tracer_->Histogram("syscall.latency_cycles");
  for (uint32_t i = 0; i < machine_->num_nics(); ++i) {
    machine_->nic(i).SetReceiveHandler([this, i](hw::Packet p) { OnPacket(i, std::move(p)); });
  }
}

XokKernel::~XokKernel() = default;

XokKernel::SyscallScope::SyscallScope(XokKernel* kernel, const char* name)
    : kernel_(kernel), name_(name) {
  kernel_->ChargeSyscall(name_);
  if (kernel_->tracer_->enabled(trace::Category::kSyscall)) {
    track_ = kernel_->current_ != nullptr ? kernel_->current_->trace_track
                                          : kernel_->trace_track_;
    start_ = kernel_->machine_->engine().now();
    kernel_->tracer_->Begin(trace::Category::kSyscall, track_, name_, start_,
                            kernel_->current_id());
    open_ = true;
  }
}

Status XokKernel::SyscallScope::Close(Status s) {
  if (open_) {
    open_ = false;
    const sim::Cycles now = kernel_->machine_->engine().now();
    kernel_->tracer_->End(trace::Category::kSyscall, track_, name_, now,
                          static_cast<uint64_t>(s));
    kernel_->syscall_hist_->Record(now - start_);
  }
  return s;
}

void XokKernel::ChargeSyscall(const char* name) {
  const auto& c = machine_->cost();
  machine_->Charge(c.trap_round_trip + c.xok_syscall_check + interrupt_debt_);
  interrupt_debt_ = 0;
  ++*syscall_counter_;
}

Status XokKernel::CheckCred(const Env& e, CredIndex cred, const CapName& guard,
                            bool need_write) {
  const auto& c = machine_->cost();
  if (cred == kCredAny) {
    for (const Capability& cap : e.caps) {
      machine_->Charge(c.cap_check);
      if (Dominates(cap, guard, need_write)) {
        return Status::kOk;
      }
    }
    return Status::kPermissionDenied;
  }
  if (cred < 0 || static_cast<size_t>(cred) >= e.caps.size()) {
    return Status::kInvalidArgument;
  }
  machine_->Charge(c.cap_check);
  return Dominates(e.caps[static_cast<size_t>(cred)], guard, need_write)
             ? Status::kOk
             : Status::kPermissionDenied;
}

// ---- Environments ----

EnvId XokKernel::CreateEnv(EnvId parent, std::vector<Capability> caps,
                           std::function<void()> body) {
  SyscallScope scope(this, "env_alloc");
  EnvId id = next_env_id_++;
  auto e = std::make_unique<Env>();
  e->id = id;
  // With tracing off at creation, the env shares the kernel track; a track
  // created later would renumber depending on when tracing was switched on.
  e->trace_track = tracer_->active() ? tracer_->NewTrack("env" + std::to_string(id))
                                     : trace_track_;
  e->parent = parent;
  e->alive = true;
  e->caps = std::move(caps);
  // The environment implicitly holds the capability for itself; its creator is
  // granted one too, enabling parent-managed setup (fork) under unidirectional trust.
  e->caps.push_back(Capability{EnvGuardName(id), true});
  if (parent != kInvalidEnv && EnvExists(parent)) {
    env(parent).caps.push_back(Capability{EnvGuardName(id), true});
  }
  e->spawned_at = machine_->engine().now();
  Env* raw = e.get();
  e->fiber = std::make_unique<sim::Fiber>([this, raw, body = std::move(body)] {
    body();
    // Body returned without SysExit; treat as exit(0) from host context after the
    // fiber completes (see Run()).
  });
  // A newborn joins one stride above the virtual clock, as if it had just
  // been issued its first quantum: it competes fairly from now on but cannot
  // claim credit for time before it existed, and a burst of newborns does not
  // pile up at the clock ahead of envs already mid-stride.
  raw->pass = global_pass_ + StrideOf(*raw);
  raw->sched_seq = ++sched_seq_counter_;
  envs_[id] = std::move(e);
  run_queue_.push_back(id);
  StrideInsert(*raw);
  ++alive_count_;
  return id;
}

Env& XokKernel::env(EnvId id) {
  auto it = envs_.find(id);
  EXO_CHECK(it != envs_.end());
  return *it->second;
}

const Env& XokKernel::env(EnvId id) const {
  auto it = envs_.find(id);
  EXO_CHECK(it != envs_.end());
  return *it->second;
}

bool XokKernel::EnvExists(EnvId id) const { return envs_.count(id) != 0; }

Status XokKernel::ReapEnv(EnvId id) {
  auto it = envs_.find(id);
  if (it == envs_.end()) {
    return Status::kNotFound;
  }
  Env& e = *it->second;
  if (e.state != EnvState::kZombie) {
    return Status::kBusy;
  }
  // Drop the mapping references; frames shared with the buffer-cache registry (or
  // other environments) survive, which is how cache contents outlive processes.
  for (const auto& [vp, pte] : e.pt.entries()) {
    ReleaseFrame(pte.frame);
  }
  // Direct references survive the reap (same reason), but their ledger entries
  // move to the host so the global accounting stays exact and a later holder of
  // the guard capability can still free them.
  for (const auto& [f, n] : e.frame_refs) {
    host_frame_refs_[f] += n;
  }
  // Regions survive likewise, ownerless; installed filters of a dead env can
  // only accumulate garbage, so they go.
  for (auto& [rid, region] : regions_) {
    if (region.owner == id) {
      region.owner = kInvalidEnv;
    }
  }
  if (auto owned = filters_by_owner_.find(id); owned != filters_by_owner_.end()) {
    for (FilterId fid : owned->second) {
      NotifyWatch(WatchKind::kFilterRing, fid);
      filters_.erase(fid);
    }
    filters_by_owner_.erase(owned);
    flow_cache_.clear();
  }
  DropPendingRevoke(e);
  if (stride_on_) {
    // Round-robin prunes dead ids lazily during rotation; the stride pick
    // never walks the deque, so reap is the only place they can leave it.
    run_queue_.erase(std::remove(run_queue_.begin(), run_queue_.end(), id), run_queue_.end());
  }
  envs_.erase(it);
  return Status::kOk;
}

void XokKernel::FinishExit(Env* e, int code) {
  EXO_CHECK(e->alive);
  if (e->state == EnvState::kBlocked) {
    UnregisterWatches(e);  // a blocked env can die via AbortEnv
  }
  StrideErase(*e);
  e->alive = false;
  e->state = EnvState::kZombie;
  e->exit_code = code;
  e->exited_at = machine_->engine().now();
  --alive_count_;
  NotifyWatch(WatchKind::kEnvState, e->id);  // wait-style predicates on this env
  // A zombie cannot comply with a revocation; the abort/reap path reclaims.
  DropPendingRevoke(*e);
  // Orphan handling: children of a dead parent will never be SysWait()ed on, so
  // their zombie state would leak. Reparent them to "no one" and auto-reap any
  // that are already (or later become) zombies. Top-level envs (created with no
  // parent) keep the old behavior: the host driver inspects and reaps them.
  for (auto& [cid, child] : envs_) {
    if (child->parent == e->id) {
      child->parent = kInvalidEnv;
      child->orphaned = true;
      if (child->state == EnvState::kZombie) {
        pending_reaps_.push_back(cid);
      }
    }
  }
  if (e->orphaned || (e->parent != kInvalidEnv && !EnvExists(e->parent))) {
    pending_reaps_.push_back(e->id);
  }
}

// ---- Scheduler ----

bool XokKernel::EvalPredicate(Env* e) {
  WakeupPredicate& p = e->predicate;
  if (!p.program.empty()) {
    udf::RunInput in;
    if (p.live_window != nullptr) {
      in.buffers[udf::kBufMeta] = *p.live_window;
    } else {
      in.buffers[udf::kBufMeta] = p.window;
    }
    in.time = [this] { return machine_->engine().now(); };
    in.fuel = 4096;
    udf::RunOutput out = udf::Run(p.program, in);
    machine_->Charge(out.insns * machine_->cost().downloaded_insn);
    return out.ok && out.ret != 0;
  }
  if (p.host) {
    machine_->Charge(p.host_cost);
    return p.host();
  }
  return true;  // empty predicate: plain yield-style sleep, immediately runnable
}

Env* XokKernel::PickNext() {
  // Directed-yield hint takes priority (Sec. 9.1: the CPU interface's directed yields
  // let communicating processes hand the slice to each other).
  auto consider = [this](Env* e) -> Env* {
    if (!e->alive) {
      return nullptr;
    }
    if (e->state == EnvState::kRunnable) {
      return e;
    }
    if (e->state != EnvState::kBlocked) {
      return nullptr;
    }
    // Watched predicates: skip the evaluation entirely while no watched object
    // has been written and the deadline has not passed. The skip charges nothing
    // (a flag check in kernel memory), so unwatched workloads are untouched.
    if (!e->predicate.watches.empty() && !e->predicate_dirty &&
        machine_->engine().now() < e->predicate.deadline) {
      ++*predicate_skip_counter_;
      if (tracer_->enabled(trace::Category::kSched)) {
        tracer_->Instant(trace::Category::kSched, trace_track_, "pred_skip",
                         machine_->engine().now(), e->id);
      }
      return nullptr;
    }
    ++*predicate_eval_counter_;
    if (tracer_->enabled(trace::Category::kSched)) {
      tracer_->Instant(trace::Category::kSched, trace_track_, "pred_eval",
                       machine_->engine().now(), e->id);
    }
    const bool ready = EvalPredicate(e);
    e->predicate_dirty = false;
    if (ready) {
      UnregisterWatches(e);
      e->state = EnvState::kRunnable;
      StrideWake(e);
      if (tracer_->enabled(trace::Category::kSched)) {
        // The whole blocked period, emitted retrospectively at wake so no span
        // stays open while the fiber is suspended.
        tracer_->Begin(trace::Category::kSched, e->trace_track, "blocked",
                       e->blocked_since, e->id);
        tracer_->End(trace::Category::kSched, e->trace_track, "blocked",
                     machine_->engine().now(), e->id);
      }
      return e;
    }
    return nullptr;
  };

  if (last_scheduled_ != kInvalidEnv && EnvExists(last_scheduled_)) {
    EnvId hint = env(last_scheduled_).yield_to;
    if (hint != kInvalidEnv) {
      env(last_scheduled_).yield_to = kInvalidEnv;
      auto it = envs_.find(hint);
      if (it != envs_.end()) {
        if (Env* e = consider(it->second.get())) {
          return e;
        }
      }
    }
  }

  if (!stride_on_) {
    // Legacy round-robin rotation, preserved verbatim for EXO_SCHED_STRIDE=0:
    // the fig2–5 goldens depend on this exact pop/push order.
    for (size_t n = run_queue_.size(); n > 0; --n) {
      EnvId id = run_queue_.front();
      run_queue_.pop_front();
      auto it = envs_.find(id);
      if (it == envs_.end() || it->second->state == EnvState::kZombie) {
        continue;  // reaped or dead: drop from the queue
      }
      run_queue_.push_back(id);
      if (Env* e = consider(it->second.get())) {
        return e;
      }
    }
    return nullptr;
  }

  // Stride pick: walk alive envs in (pass, sched_seq) order and run the first
  // schedulable one — blocked envs keep their place and are predicate-checked
  // as encountered, exactly like the rotation above but in pass order. The
  // walk re-seeks by key each step because a charged predicate evaluation can
  // fire device events whose handlers mutate the set.
  auto it = stride_order_.begin();
  while (it != stride_order_.end()) {
    const auto key = *it;
    if (Env* e = consider(&env(std::get<2>(key)))) {
      return e;
    }
    it = stride_order_.upper_bound(key);
  }
  return nullptr;
}

void XokKernel::StrideInsert(const Env& e) {
  if (stride_on_) {
    stride_order_.insert({e.pass, e.sched_seq, e.id});
  }
}

void XokKernel::StrideErase(const Env& e) {
  if (stride_on_) {
    stride_order_.erase({e.pass, e.sched_seq, e.id});
  }
}

void XokKernel::StrideCharge(Env* e, sim::Cycles used) {
  StrideErase(*e);
  // Pass advances with CPU actually consumed, not per slice granted: an env
  // that yields early pays for what it used, one that defers its slice end
  // inside a critical section pays for every deferred quantum.
  const uint64_t inc = StrideOf(*e) * used / machine_->cost().quantum;
  e->pass += inc == 0 ? 1 : inc;
  e->sched_seq = ++sched_seq_counter_;
  StrideInsert(*e);
}

void XokKernel::StrideWake(Env* e) {
  if (!stride_on_) {
    return;
  }
  // Bounded lag: an env that consumes less than its ticket share legitimately
  // trails the virtual clock, and that credit is what lets it preempt
  // CPU-bound envs the moment it wakes — so a waker keeps its own pass.
  // But the credit is capped at kMaxSchedLag of virtual time: a hostile env
  // that sleeps for ages and then goes CPU-bound can burst only
  // kMaxSchedLag / stride quanta (about one slice at minimum share) before
  // the scheduler treats it like any other contender, instead of cashing the
  // whole idle period in as starvation of everyone else.
  const uint64_t floor =
      global_pass_ > kMaxSchedLag ? global_pass_ - kMaxSchedLag : 0;
  if (e->pass >= floor) {
    return;
  }
  StrideErase(*e);
  e->pass = floor;
  e->sched_seq = ++sched_seq_counter_;
  StrideInsert(*e);
  ++*wake_jump_counter_;
}

void XokKernel::SetStrideScheduling(bool on) {
  EXO_CHECK(current_ == nullptr);  // host-only: the pick walk must not be live
  stride_on_ = on;
  stride_order_.clear();
  if (stride_on_) {
    for (const auto& [id, e] : envs_) {
      if (e->alive) {
        stride_order_.insert({e->pass, e->sched_seq, id});
      }
    }
  }
}

void XokKernel::Run() {
  EXO_CHECK(current_ == nullptr);
  sim::Cycles idle_since = machine_->engine().now();
  bool was_idle = false;

  while (alive_count_ > 0) {
    DrainPendingReaps();
    if (pending_revocations_ > 0) {
      EnforceRevocations();
      if (alive_count_ == 0) {
        break;
      }
    }
    MaybeRelievePressure();
    Env* next = PickNext();
    if (next == nullptr) {
      if (machine_->engine().HasPendingEvents()) {
        machine_->engine().RunNextEvent();
        was_idle = false;
        continue;
      }
      // Everything is blocked and no device events are pending: advance the clock so
      // time-based predicates can fire. Bounded to catch true deadlock.
      if (!was_idle) {
        was_idle = true;
        idle_since = machine_->engine().now();
      }
      sim::Cycles step = kIdleTick;
      for (const auto& [id, e] : envs_) {
        if (e->state == EnvState::kBlocked && e->predicate.deadline != UINT64_MAX &&
            e->predicate.deadline > machine_->engine().now()) {
          step = std::min(step, e->predicate.deadline - machine_->engine().now());
        }
      }
      if (!revoke_deadlines_.empty() &&
          revoke_deadlines_.begin()->first > machine_->engine().now()) {
        step = std::min(step, revoke_deadlines_.begin()->first - machine_->engine().now());
      }
      if (machine_->engine().now() - idle_since >= deadlock_bound_) {
        // Never-true predicates (or a lost wakeup) would idle forever. Report a
        // diagnostic and abort the stuck envs instead of spinning or crashing
        // the host: a buggy libOS may only hurt itself (Sec. 3).
        deadlock_report_ = "deadlock: " + std::to_string(alive_count_) + " alive envs idle for " +
                           std::to_string(machine_->engine().now() - idle_since) + " cycles:";
        std::vector<EnvId> stuck;
        for (const auto& [id, e] : envs_) {
          deadlock_report_ += " env" + std::to_string(id) + "=" +
                              (e->state == EnvState::kRunnable ? "runnable"
                               : e->state == EnvState::kBlocked ? "blocked"
                                                                : "zombie");
          if (e->alive) {
            stuck.push_back(id);
          }
        }
        std::fprintf(stderr, "%s\n", deadlock_report_.c_str());
        for (EnvId id : stuck) {
          AbortEnv(id, "deadlock: wakeup predicate can never become true");
        }
        continue;
      }
      machine_->engine().Advance(step);
      continue;
    }
    was_idle = false;

    if (next->id != last_scheduled_) {
      machine_->Charge(machine_->cost().context_switch);
      ++*ctx_switch_counter_;
      if (tracer_->enabled(trace::Category::kSched)) {
        tracer_->Instant(trace::Category::kSched, trace_track_, "context_switch",
                         machine_->engine().now(), next->id);
      }
    }
    last_scheduled_ = next->id;
    next->slice_used = 0;
    if (stride_on_) {
      ++*stride_pick_counter_;
      machine_->Charge(machine_->cost().stride_pick);
      // Advance the virtual clock to the service point. The picked env is the
      // lowest-pass schedulable env, so this is the stride analogue of CFS
      // min_vruntime: monotone, and never ahead of what is actually served.
      if (next->pass > global_pass_) {
        global_pass_ = next->pass;
      }
    }
    const sim::Cycles run_from = machine_->engine().now();

    if (next->on_slice_begin) {
      machine_->Charge(machine_->cost().upcall);
      next->on_slice_begin();
    }

    const bool trace_run = tracer_->enabled(trace::Category::kSched);
    if (trace_run) {
      tracer_->Begin(trace::Category::kSched, next->trace_track, "run",
                     machine_->engine().now(), next->id);
    }
    current_ = next;
    next->fiber->Resume();
    current_ = nullptr;
    if (trace_run) {
      tracer_->End(trace::Category::kSched, next->trace_track, "run",
                   machine_->engine().now(), next->id);
    }

    if (next->fiber->done() && next->alive) {
      FinishExit(next, 0);
    }
    if (stride_on_ && next->alive) {
      StrideCharge(next, machine_->engine().now() - run_from);
    }
  }
  DrainPendingReaps();
}

void XokKernel::DrainPendingReaps() {
  while (!pending_reaps_.empty()) {
    EnvId id = pending_reaps_.front();
    pending_reaps_.pop_front();
    if (EnvExists(id) && env(id).state == EnvState::kZombie) {
      ++*orphan_reap_counter_;
      EXO_CHECK_EQ(ReapEnv(id), Status::kOk);
    }
  }
}

void XokKernel::EnforceRevocations() {
  // The deadline index makes the healthy path O(1): peek at the earliest
  // outstanding deadline instead of scanning every env per scheduler pass.
  while (!revoke_deadlines_.empty() &&
         revoke_deadlines_.begin()->first <= machine_->engine().now()) {
    const EnvId id = revoke_deadlines_.begin()->second;
    Env& e = env(id);
    if (RevocableUsage(e, e.pending_revoke->resource) <= e.pending_revoke->allowed) {
      DropPendingRevoke(e);  // complied on the last cycle
      continue;
    }
    const bool from_pressure = e.pending_revoke->from_pressure;
    if (from_pressure) {
      ++*pressure_abort_counter_;
      if (tracer_->enabled(trace::Category::kSched)) {
        tracer_->Instant(trace::Category::kSched, trace_track_, "pressure_abort",
                         machine_->engine().now(), id);
      }
    }
    AbortEnv(id, from_pressure ? "revocation deadline passed (memory pressure)"
                               : "revocation deadline passed");
  }
}

void XokKernel::MaybeRelievePressure() {
  if (pressure_policy_.low_frames == 0) {
    return;  // disarmed (the default): one predicted branch per scheduler pass
  }
  const uint32_t free = FreeFrameCount();
  if (!pressure_active_) {
    if (free >= pressure_policy_.low_frames) {
      return;
    }
    pressure_active_ = true;
  } else if (free >= pressure_policy_.high_frames) {
    pressure_active_ = false;  // hysteresis: recovered past the high mark
    return;
  }
  const sim::Cycles now = machine_->engine().now();
  if (last_pressure_revoke_ != 0 &&
      now - last_pressure_revoke_ < pressure_policy_.min_interval) {
    return;
  }
  // Proportional-share victim selection: the env furthest over its
  // tickets-proportional slice of physical memory. Envs already under a
  // revocation request are skipped (one outstanding request per env).
  uint64_t total_tickets = 0;
  for (const auto& [id, e] : envs_) {
    if (e->alive) {
      total_tickets += EffectiveTickets(*e);
    }
  }
  if (total_tickets == 0) {
    return;
  }
  const uint64_t nframes = machine_->mem().num_frames();
  Env* victim = nullptr;
  uint64_t victim_share = 0;
  int64_t worst = 0;
  for (const auto& [id, e] : envs_) {
    if (!e->alive || e->pending_revoke.has_value()) {
      continue;
    }
    const uint64_t share = nframes * EffectiveTickets(*e) / total_tickets;
    const int64_t over = static_cast<int64_t>(e->usage.frames) - static_cast<int64_t>(share);
    if (over > worst) {
      worst = over;
      victim = e.get();
      victim_share = share;
    }
  }
  if (victim == nullptr) {
    return;  // nobody over share: the pressure is host/registry frames
  }
  // Ask for enough to clear the high mark, but never push an env below its
  // fair share — pressure enforces proportionality, it does not confiscate.
  const uint32_t need =
      pressure_policy_.high_frames > free ? pressure_policy_.high_frames - free : 1;
  uint32_t allowed = victim->usage.frames > need ? victim->usage.frames - need : 0;
  allowed = std::max(allowed, static_cast<uint32_t>(victim_share));
  last_pressure_revoke_ = now;
  ++*pressure_revoke_counter_;
  if (tracer_->enabled(trace::Category::kSched)) {
    tracer_->Instant(trace::Category::kSched, trace_track_, "pressure_revoke", now, victim->id);
  }
  (void)RevokeImpl(victim->id, RevokeResource::kFrames, allowed, pressure_policy_.grace,
                   kCredAny, /*from_pressure=*/true);
}

void XokKernel::ChargeCpu(sim::Cycles cycles) {
  cycles += interrupt_debt_;
  interrupt_debt_ = 0;
  if (current_ == nullptr) {
    // Host/boot context: no slicing.
    machine_->Charge(cycles);
    return;
  }
  Env* e = current_;
  const sim::Cycles quantum = machine_->cost().quantum;
  for (;;) {
    if (e->slice_used >= quantum) {
      // Timer fires the moment the quantum is consumed.
      if (e->critical_depth > 0) {
        // Software interrupts disabled: defer slice end, run on (Sec. 3.3). The
        // paper's critical sections are short by construction; one that eats
        // whole quanta without re-enabling interrupts is runaway, and the
        // kernel repossesses the CPU by aborting it (Sec. 3.5).
        if (++e->deferred_slices > kMaxCriticalDeferrals) {
          AbortEnv(e->id, "runaway critical section");  // does not return
        }
        e->end_of_slice_pending = true;
        e->slice_used = 0;
      } else {
        e->deferred_slices = 0;
        DeliverEndOfSlice(e);
        sim::Fiber::Suspend();  // back of the round-robin queue; resumed later
        e->slice_used = 0;
      }
      continue;
    }
    if (cycles == 0) {
      break;
    }
    sim::Cycles step = std::min(cycles, quantum - e->slice_used);
    machine_->Charge(step);
    e->slice_used += step;
    cycles -= step;
  }
}

void XokKernel::DeliverEndOfSlice(Env* e) {
  if (e->on_slice_end) {
    machine_->Charge(machine_->cost().upcall);
    e->on_slice_end();
  }
}

void XokKernel::SysYield(EnvId directed) {
  EXO_CHECK(current_ != nullptr);
  SyscallScope scope(this, "yield");
  current_->yield_to = directed;
  scope.Close(Status::kOk);  // the span must not outlive the fiber's slice
  sim::Fiber::Suspend();
}

void XokKernel::SysSleep(WakeupPredicate predicate) {
  EXO_CHECK(current_ != nullptr);
  SyscallScope scope(this, "sleep");
  // Downloaded predicates face the same static verifier as packet filters; an
  // unverifiable program is dropped, degrading to a plain yield-style sleep
  // (immediately runnable) rather than running arbitrary code in the scheduler.
  if (!predicate.program.empty() &&
      (predicate.program.size() > kMaxFilterProgramInsns ||
       !udf::Verify(predicate.program, udf::Policy::kDeterministic).ok)) {
    predicate.program.clear();
    predicate.host = nullptr;
  }
  current_->predicate = std::move(predicate);
  current_->state = EnvState::kBlocked;
  current_->predicate_dirty = true;  // always evaluate at least once after blocking
  current_->blocked_since = machine_->engine().now();
  RegisterWatches(current_);
  scope.Close(Status::kOk);  // the span must not outlive the fiber's slice
  sim::Fiber::Suspend();
}

void XokKernel::RegisterWatches(Env* e) {
  for (const WatchSpec& w : e->predicate.watches) {
    watchers_[{static_cast<uint8_t>(w.kind), w.id}].push_back(e->id);
  }
}

void XokKernel::UnregisterWatches(Env* e) {
  if (e->predicate.watches.empty()) {
    return;
  }
  for (const WatchSpec& w : e->predicate.watches) {
    auto it = watchers_.find({static_cast<uint8_t>(w.kind), w.id});
    if (it == watchers_.end()) {
      continue;
    }
    auto& v = it->second;
    v.erase(std::remove(v.begin(), v.end(), e->id), v.end());
    if (v.empty()) {
      watchers_.erase(it);
    }
  }
}

void XokKernel::NotifyWatch(WatchKind kind, uint32_t id) {
  auto it = watchers_.find({static_cast<uint8_t>(kind), id});
  if (it == watchers_.end()) {
    return;
  }
  auto& v = it->second;
  size_t kept = 0;
  for (EnvId watcher : v) {
    auto eit = envs_.find(watcher);
    if (eit == envs_.end() || eit->second->state != EnvState::kBlocked) {
      continue;  // stale entry: the watcher woke or died; prune it
    }
    eit->second->predicate_dirty = true;
    v[kept++] = watcher;
  }
  v.resize(kept);
  if (v.empty()) {
    watchers_.erase(it);
  }
}

void XokKernel::SysExit(int code) {
  EXO_CHECK(current_ != nullptr);
  SyscallScope scope(this, "exit");
  FinishExit(current_, code);
  scope.Close(Status::kOk);  // the fiber never resumes past the suspend below
  for (;;) {
    sim::Fiber::Suspend();  // zombies are never scheduled again
    EXO_CHECK(false);
  }
}

Result<int> XokKernel::SysWait(EnvId child) {
  EXO_CHECK(current_ != nullptr);
  SyscallScope scope(this, "wait");
  if (!EnvExists(child)) {
    return scope.Close(Status::kNotFound);
  }
  if (env(child).parent != current_->id) {
    return scope.Close(Status::kPermissionDenied);
  }
  scope.Close(Status::kOk);  // the nested SysSleep may suspend the fiber
  if (env(child).state != EnvState::kZombie) {
    WakeupPredicate p;
    p.host = [this, child] {
      return EnvExists(child) && env(child).state == EnvState::kZombie;
    };
    SysSleep(std::move(p));
  }
  int code = env(child).exit_code;
  EXO_CHECK_EQ(ReapEnv(child), Status::kOk);
  return code;
}

void XokKernel::EnterCritical() {
  EXO_CHECK(current_ != nullptr);
  machine_->Charge(5);  // a flag write in exposed memory; no kernel crossing
  if (current_->critical_depth >= kMaxCriticalDepth) {
    AbortEnv(current_->id, "critical-section depth overflow");  // does not return
  }
  ++current_->critical_depth;
}

void XokKernel::ExitCritical() {
  EXO_CHECK(current_ != nullptr);
  Env* e = current_;
  if (e->critical_depth == 0) {
    // Unbalanced exit: a libOS bug that would previously crash the host. It only
    // hurts the misbehaving env.
    AbortEnv(e->id, "critical-section underflow");  // does not return
  }
  machine_->Charge(5);
  if (--e->critical_depth == 0) {
    e->deferred_slices = 0;
    if (e->end_of_slice_pending) {
      e->end_of_slice_pending = false;
      DeliverEndOfSlice(e);
      sim::Fiber::Suspend();
      e->slice_used = 0;
    }
  }
}

// ---- Physical memory ----

void XokKernel::ReleaseFrame(hw::FrameId frame) {
  machine_->mem().Unref(frame);
  if (!machine_->mem().allocated(frame)) {
    frame_guards_.erase(frame);
    host_frame_refs_.erase(frame);
  }
}

bool XokKernel::DebitFrameRef(hw::FrameId frame, Env* preferred) {
  if (preferred != nullptr) {
    auto it = preferred->frame_refs.find(frame);
    if (it != preferred->frame_refs.end()) {
      if (--it->second == 0) {
        preferred->frame_refs.erase(it);
      }
      --preferred->usage.frames;
      ClearRevokeIfCompliant(*preferred);
      return true;
    }
  }
  auto hit = host_frame_refs_.find(frame);
  if (hit != host_frame_refs_.end()) {
    if (--hit->second == 0) {
      host_frame_refs_.erase(hit);
    }
    return true;
  }
  // Freed by a capability holder that never took the reference itself: debit
  // whichever env's ledger carries it so attribution tracks the real refcounts.
  for (auto& [id, e] : envs_) {
    auto it = e->frame_refs.find(frame);
    if (it != e->frame_refs.end()) {
      if (--it->second == 0) {
        e->frame_refs.erase(it);
      }
      --e->usage.frames;
      ClearRevokeIfCompliant(*e);
      return true;
    }
  }
  return false;
}

void XokKernel::FrameUnref(hw::FrameId frame, EnvId attribution) {
  if (frame >= machine_->mem().num_frames() || !machine_->mem().allocated(frame)) {
    return;  // trusted path, but stay defensive: never abort the host
  }
  Env* holder = (attribution != kInvalidEnv && EnvExists(attribution)) ? &env(attribution) : nullptr;
  DebitFrameRef(frame, holder);
  ReleaseFrame(frame);
}

Result<hw::FrameId> XokKernel::SysFrameAlloc(CredIndex cred, CapName guard, bool shared) {
  SyscallScope scope(this, "frame_alloc");
  (void)cred;  // allocation itself needs no permission; the guard protects use
  if (guard.size() > kMaxGuardName) {
    return scope.Close(Status::kInvalidArgument);
  }
  Env* e = shared ? nullptr : current_;
  if (e != nullptr && e->usage.frames + 1 > e->quota.frames) {
    return scope.Close(Status::kQuotaExceeded);
  }
  auto f = machine_->mem().Alloc();
  if (!f.ok()) {
    return scope.Close(f.status());
  }
  frame_guards_[*f] = std::move(guard);
  if (e != nullptr) {
    ++e->frame_refs[*f];
    ++e->usage.frames;
  } else {
    ++host_frame_refs_[*f];
  }
  return *f;
}

Status XokKernel::SysFrameFree(hw::FrameId frame, CredIndex cred) {
  SyscallScope scope(this, "frame_free");
  if (frame >= machine_->mem().num_frames()) {
    return scope.Close(Status::kInvalidArgument);
  }
  auto it = frame_guards_.find(frame);
  if (it == frame_guards_.end() || !machine_->mem().allocated(frame)) {
    return scope.Close(Status::kNotFound);
  }
  if (current_ != nullptr) {
    Status s = CheckCred(*current_, cred, it->second, /*need_write=*/true);
    if (s != Status::kOk) {
      return scope.Close(s);
    }
  }
  if (!DebitFrameRef(frame, current_)) {
    // Every remaining reference is a page mapping or kernel-held (e.g. the
    // buffer-cache registry). Releasing one from here would leave a dangling
    // mapping; the holder must unmap/evict first.
    return scope.Close(Status::kBusy);
  }
  ReleaseFrame(frame);
  return Status::kOk;
}

Status XokKernel::SysFrameRef(hw::FrameId frame, CredIndex cred) {
  SyscallScope scope(this, "frame_ref");
  if (frame >= machine_->mem().num_frames()) {
    return scope.Close(Status::kInvalidArgument);
  }
  auto it = frame_guards_.find(frame);
  if (it == frame_guards_.end() || !machine_->mem().allocated(frame)) {
    return scope.Close(Status::kNotFound);
  }
  if (current_ != nullptr) {
    Status s = CheckCred(*current_, cred, it->second, /*need_write=*/false);
    if (s != Status::kOk) {
      return scope.Close(s);
    }
  }
  if (current_ != nullptr && current_->usage.frames + 1 > current_->quota.frames) {
    return scope.Close(Status::kQuotaExceeded);
  }
  machine_->mem().Ref(frame);
  if (current_ != nullptr) {
    ++current_->frame_refs[frame];
    ++current_->usage.frames;
  } else {
    ++host_frame_refs_[frame];
  }
  return Status::kOk;
}

const CapName& XokKernel::FrameGuard(hw::FrameId frame) const {
  auto it = frame_guards_.find(frame);
  EXO_CHECK(it != frame_guards_.end());
  return it->second;
}

uint32_t XokKernel::FreeFrameCount() const { return machine_->mem().free_frames(); }

Status XokKernel::PtApply(Env& target, const PtOp& op, CredIndex cred) {
  const Env* caller = current_ != nullptr ? current_ : &target;
  // Updating another environment's page table requires its environment capability.
  if (caller->id != target.id) {
    Status s = CheckCred(*caller, cred, EnvGuardName(target.id), /*need_write=*/true);
    if (s != Status::kOk) {
      return s;
    }
  }
  switch (op.kind) {
    case PtOp::Kind::kInsert: {
      if (op.pte.frame >= machine_->mem().num_frames()) {
        return Status::kInvalidArgument;
      }
      auto git = frame_guards_.find(op.pte.frame);
      if (git == frame_guards_.end() || !machine_->mem().allocated(op.pte.frame)) {
        return Status::kNotFound;
      }
      Status s = CheckCred(*caller, cred, git->second, /*need_write=*/op.pte.writable);
      if (s != Status::kOk) {
        return s;
      }
      const Pte* old = target.pt.Lookup(op.vpage);
      if (old == nullptr && target.usage.frames + 1 > target.quota.frames) {
        return Status::kQuotaExceeded;
      }
      // Take the new reference before dropping the old one: remapping the same
      // frame over itself must not bounce the refcount through zero.
      machine_->mem().Ref(op.pte.frame);
      if (old != nullptr) {
        ReleaseFrame(old->frame);
      } else {
        ++target.usage.frames;
      }
      target.pt.Insert(op.vpage, op.pte);
      return Status::kOk;
    }
    case PtOp::Kind::kProtect: {
      Pte* pte = target.pt.LookupMutable(op.vpage);
      if (pte == nullptr) {
        return Status::kNotFound;
      }
      if (op.pte.writable && !pte->writable) {
        // Upgrading to writable requires write access to the frame.
        auto git = frame_guards_.find(pte->frame);
        if (git == frame_guards_.end()) {
          return Status::kNotFound;
        }
        Status s = CheckCred(*caller, cred, git->second, /*need_write=*/true);
        if (s != Status::kOk) {
          return s;
        }
      }
      pte->readable = op.pte.readable;
      pte->writable = op.pte.writable;
      pte->software_bits = op.pte.software_bits;
      return Status::kOk;
    }
    case PtOp::Kind::kRemove: {
      const Pte* pte = target.pt.Lookup(op.vpage);
      if (pte == nullptr) {
        return Status::kNotFound;
      }
      ReleaseFrame(pte->frame);
      target.pt.Remove(op.vpage);
      --target.usage.frames;
      ClearRevokeIfCompliant(target);
      return Status::kOk;
    }
  }
  return Status::kInvalidArgument;
}

Status XokKernel::SysPtUpdate(EnvId target, const PtOp& op, CredIndex cred) {
  SyscallScope scope(this, "pt_update");
  if (!EnvExists(target)) {
    return scope.Close(Status::kNotFound);
  }
  machine_->Charge(machine_->cost().pte_update_kernel);
  return scope.Close(PtApply(env(target), op, cred));
}

Status XokKernel::SysPtBatch(EnvId target, std::span<const PtOp> ops, CredIndex cred) {
  SyscallScope scope(this, "pt_batch");
  if (!EnvExists(target)) {
    return scope.Close(Status::kNotFound);
  }
  Env& t = env(target);
  for (const PtOp& op : ops) {
    machine_->Charge(machine_->cost().pte_update_batched);
    Status s = PtApply(t, op, cred);
    if (s != Status::kOk) {
      return scope.Close(s);  // batch stops at first failure; prior updates remain applied
    }
  }
  return Status::kOk;
}

Status XokKernel::AccessUserMemory(EnvId id, uint64_t vaddr, std::span<uint8_t> buf,
                                   bool write, bool charge_copy) {
  if (!EnvExists(id)) {
    return Status::kNotFound;
  }
  Env& e = env(id);
  size_t done = 0;
  while (done < buf.size()) {
    const VPage vp = static_cast<VPage>((vaddr + done) >> kPageShift);
    const uint32_t off = static_cast<uint32_t>((vaddr + done) & (hw::kPageSize - 1));
    const uint32_t chunk =
        static_cast<uint32_t>(std::min<uint64_t>(buf.size() - done, hw::kPageSize - off));

    const Pte* pte = e.pt.Lookup(vp);
    int tries = 0;
    while (pte == nullptr || !pte->readable || (write && !pte->writable)) {
      machine_->Charge(machine_->cost().page_fault_trap);
      ++*fault_counter_;
      if (!e.on_page_fault || !e.on_page_fault(vp, write)) {
        return Status::kPermissionDenied;
      }
      pte = e.pt.Lookup(vp);
      if (++tries > 4) {
        return Status::kPermissionDenied;
      }
    }

    auto frame = machine_->mem().Data(pte->frame);
    if (charge_copy) {
      machine_->Charge(machine_->cost().CopyCost(chunk));
    }
    if (write) {
      std::memcpy(frame.data() + off, buf.data() + done, chunk);
    } else {
      std::memcpy(buf.data() + done, frame.data() + off, chunk);
    }
    done += chunk;
  }
  return Status::kOk;
}

// ---- Software regions ----

Result<RegionId> XokKernel::SysRegionCreate(uint32_t size, CapName guard, CredIndex cred) {
  SyscallScope scope(this, "region_create");
  (void)cred;
  if (size == 0 || size > (1u << 20) || guard.size() > kMaxGuardName) {
    return scope.Close(Status::kInvalidArgument);
  }
  if (current_ != nullptr && (current_->usage.regions + 1 > current_->quota.regions ||
                              current_->usage.region_bytes + size > current_->quota.region_bytes)) {
    return scope.Close(Status::kQuotaExceeded);
  }
  RegionId id = next_region_id_++;
  regions_[id] = Region{std::move(guard), current_id(), std::vector<uint8_t>(size, 0)};
  if (current_ != nullptr) {
    ++current_->usage.regions;
    current_->usage.region_bytes += size;
  }
  return id;
}

Status XokKernel::SysRegionWrite(RegionId rid, uint32_t off, std::span<const uint8_t> data,
                                 CredIndex cred) {
  SyscallScope scope(this, "region_write");
  auto it = regions_.find(rid);
  if (it == regions_.end()) {
    return scope.Close(Status::kNotFound);
  }
  if (current_ != nullptr) {
    Status s = CheckCred(*current_, cred, it->second.guard, /*need_write=*/true);
    if (s != Status::kOk) {
      return scope.Close(s);
    }
  }
  auto& bytes = it->second.bytes;
  if (static_cast<uint64_t>(off) + data.size() > bytes.size()) {
    return scope.Close(Status::kInvalidArgument);
  }
  machine_->Charge(machine_->cost().CopyCost(data.size()));
  std::memcpy(bytes.data() + off, data.data(), data.size());
  NotifyWatch(WatchKind::kRegion, rid);
  return Status::kOk;
}

Status XokKernel::SysRegionRead(RegionId rid, uint32_t off, std::span<uint8_t> out,
                                CredIndex cred) {
  SyscallScope scope(this, "region_read");
  auto it = regions_.find(rid);
  if (it == regions_.end()) {
    return scope.Close(Status::kNotFound);
  }
  if (current_ != nullptr) {
    Status s = CheckCred(*current_, cred, it->second.guard, /*need_write=*/false);
    if (s != Status::kOk) {
      return scope.Close(s);
    }
  }
  const auto& bytes = it->second.bytes;
  if (static_cast<uint64_t>(off) + out.size() > bytes.size()) {
    return scope.Close(Status::kInvalidArgument);
  }
  machine_->Charge(machine_->cost().CopyCost(out.size()));
  std::memcpy(out.data(), bytes.data() + off, out.size());
  return Status::kOk;
}

Status XokKernel::SysRegionDestroy(RegionId rid, CredIndex cred) {
  SyscallScope scope(this, "region_destroy");
  auto it = regions_.find(rid);
  if (it == regions_.end()) {
    return scope.Close(Status::kNotFound);
  }
  if (current_ != nullptr) {
    Status s = CheckCred(*current_, cred, it->second.guard, /*need_write=*/true);
    if (s != Status::kOk) {
      return scope.Close(s);
    }
  }
  if (it->second.owner != kInvalidEnv && EnvExists(it->second.owner)) {
    Env& owner = env(it->second.owner);
    --owner.usage.regions;
    owner.usage.region_bytes -= it->second.bytes.size();
    ClearRevokeIfCompliant(owner);
  }
  regions_.erase(it);
  NotifyWatch(WatchKind::kRegion, rid);
  return Status::kOk;
}

const std::vector<uint8_t>* XokKernel::RegionBytes(RegionId rid) const {
  auto it = regions_.find(rid);
  return it == regions_.end() ? nullptr : &it->second.bytes;
}

// ---- IPC ----

Status XokKernel::SysIpcSend(EnvId to, const IpcMessage& msg, CredIndex cred) {
  SyscallScope scope(this, "ipc_send");
  if (!EnvExists(to) || !env(to).alive) {
    return scope.Close(Status::kNotFound);
  }
  Env& dest = env(to);
  // The queue lives in kernel memory: bound it by the receiver's quota so a
  // flooding sender exhausts its own patience, not host memory.
  if (dest.ipc_queue.size() >= dest.quota.ipc_depth) {
    ++*ipc_rejected_counter_;
    return scope.Close(Status::kWouldBlock);
  }
  IpcMessage m = msg;
  m.from = current_ != nullptr ? current_->id : kInvalidEnv;
  dest.ipc_queue.push_back(m);
  NotifyWatch(WatchKind::kIpc, to);
  if (dest.on_ipc) {
    machine_->Charge(machine_->cost().upcall);
    dest.on_ipc(m);
  }
  return Status::kOk;
}

Result<IpcMessage> XokKernel::SysIpcRecv() {
  EXO_CHECK(current_ != nullptr);
  SyscallScope scope(this, "ipc_recv");
  if (current_->ipc_queue.empty()) {
    return scope.Close(Status::kWouldBlock);
  }
  IpcMessage m = current_->ipc_queue.front();
  current_->ipc_queue.pop_front();
  NotifyWatch(WatchKind::kIpc, current_->id);
  return m;
}

// ---- Network ----

Result<FilterId> XokKernel::SysFilterInstall(udf::Program program, CredIndex cred) {
  SyscallScope scope(this, "filter_install");
  (void)cred;
  if (program.size() > kMaxFilterProgramInsns) {
    return scope.Close(Status::kInvalidArgument);
  }
  auto v = udf::Verify(program, udf::Policy::kDeterministic);
  if (!v.ok) {
    return scope.Close(Status::kVerifierReject);
  }
  PacketFilter f;
  f.id = next_filter_id_++;
  f.owner = current_ != nullptr ? current_->id : kInvalidEnv;
  f.program = std::move(program);
  if (current_ != nullptr &&
      (current_->usage.filters + 1 > current_->quota.filters ||
       current_->usage.ring_slots + f.ring_capacity > current_->quota.ring_slots)) {
    return scope.Close(Status::kQuotaExceeded);
  }
  if (current_ != nullptr) {
    ++current_->usage.filters;
    current_->usage.ring_slots += f.ring_capacity;
  }
  f.flow_cacheable = FlowCacheable(f.program);
  const FilterId fid = f.id;
  filters_by_owner_[f.owner].insert(fid);
  filters_.emplace(fid, std::move(f));
  flow_cache_.clear();  // every filter-set mutation drops memoized verdicts
  return fid;
}

Status XokKernel::SysFilterRemove(FilterId id, CredIndex cred) {
  SyscallScope scope(this, "filter_remove");
  (void)cred;
  auto it = filters_.find(id);
  if (it == filters_.end()) {
    return scope.Close(Status::kNotFound);
  }
  PacketFilter& f = it->second;
  if (current_ != nullptr && f.owner != current_->id) {
    return scope.Close(Status::kPermissionDenied);
  }
  if (f.owner != kInvalidEnv && EnvExists(f.owner)) {
    Env& owner = env(f.owner);
    --owner.usage.filters;
    owner.usage.ring_slots -= f.ring_capacity;
    ClearRevokeIfCompliant(owner);
  }
  EraseFilter(id);
  NotifyWatch(WatchKind::kFilterRing, id);
  return Status::kOk;
}

void XokKernel::EraseFilter(FilterId id) {
  auto it = filters_.find(id);
  if (it == filters_.end()) {
    return;
  }
  if (auto owned = filters_by_owner_.find(it->second.owner);
      owned != filters_by_owner_.end()) {
    owned->second.erase(id);
    if (owned->second.empty()) {
      filters_by_owner_.erase(owned);
    }
  }
  filters_.erase(it);
  flow_cache_.clear();  // stale entries would misdeliver
}

Result<hw::Packet> XokKernel::SysRingConsume(FilterId id, CredIndex cred) {
  // Packet rings live in application memory; consuming advances a head pointer the
  // application owns, so no kernel crossing is needed (Sec. 5.1).
  machine_->Charge(30);
  auto it = filters_.find(id);
  if (it == filters_.end()) {
    return Status::kNotFound;
  }
  PacketFilter& f = it->second;
  if (current_ != nullptr && f.owner != current_->id) {
    return Status::kPermissionDenied;
  }
  if (f.ring.empty()) {
    return Status::kWouldBlock;
  }
  hw::Packet p = std::move(f.ring.front());
  f.ring.pop_front();
  NotifyWatch(WatchKind::kFilterRing, id);
  return p;
}

const PacketFilter* XokKernel::Filter(FilterId id) const {
  auto it = filters_.find(id);
  return it != filters_.end() ? &it->second : nullptr;
}

Status XokKernel::SysNicTransmit(uint32_t nic, hw::Packet packet) {
  SyscallScope scope(this, "nic_tx");
  if (nic >= machine_->num_nics() || packet.bytes.size() > hw::kMaxFrameBytes) {
    // An oversized frame must not reach the DMA engine.
    return scope.Close(Status::kInvalidArgument);
  }
  machine_->Charge(150);  // DMA descriptor setup; the CPU does not touch the payload
  machine_->nic(nic).Transmit(std::move(packet));
  return Status::kOk;
}

bool XokKernel::FlowCacheable(const udf::Program& p) {
  // Which registers does the program ever write? Registers start at 0, so a
  // load whose index register is never written addresses exactly `imm`.
  bool written[udf::kNumRegs] = {};
  for (const udf::Insn& in : p) {
    switch (in.op) {
      case udf::Op::kBz:
      case udf::Op::kBnz:
      case udf::Op::kJmp:
      case udf::Op::kEmit:
      case udf::Op::kRet:
        break;
      default:
        written[in.rd % udf::kNumRegs] = true;
        break;
    }
  }
  for (const udf::Insn& in : p) {
    uint32_t width = 0;
    switch (in.op) {
      case udf::Op::kLd1: width = 1; break;
      case udf::Op::kLd2: width = 2; break;
      case udf::Op::kLd4: width = 4; break;
      case udf::Op::kLd8: width = 8; break;
      case udf::Op::kLen:
      case udf::Op::kTime:
        return false;  // verdict depends on more than the key prefix
      default:
        continue;
    }
    if (in.rt != udf::kBufMeta || written[in.rs % udf::kNumRegs] || in.imm < 0 ||
        static_cast<uint32_t>(in.imm) + width > kFlowKeyBytes) {
      return false;
    }
  }
  return true;
}

void XokKernel::DeliverToFilter(PacketFilter& f, hw::Packet p) {
  const bool full = f.ring.size() >= f.ring_capacity;
  if (full) {
    ++f.dropped;
    ++*ring_drop_counter_;
  } else {
    f.ring.push_back(std::move(p));
    ++f.delivered;
  }
  NotifyWatch(WatchKind::kFilterRing, f.id);
  ++*demux_counter_;
  if (tracer_->enabled(trace::Category::kNet)) {
    tracer_->Instant(trace::Category::kNet, trace_track_,
                     full ? "ring_drop" : "demux", machine_->engine().now(), f.id);
  }
}

void XokKernel::OnPacket(uint32_t nic, hw::Packet p) {
  // Interrupt context: account the demultiplexing work but do not advance the clock
  // re-entrantly (we are inside an event callback). The cost is charged as a lump on
  // the next clock advance via a zero-length event.
  sim::Cycles cost = machine_->cost().interrupt_overhead;
  const bool keyable = demux_cache_on_ && p.bytes.size() >= kFlowKeyBytes;
  FlowKey key;
  if (keyable) {
    std::memcpy(&key.lo, p.bytes.data(), 8);
    std::memcpy(&key.hi, p.bytes.data() + 8, 8);
    if (auto it = flow_cache_.find(key); it != flow_cache_.end()) {
      // One hash probe replaces the filter-program walk.
      ++*demux_hit_counter_;
      cost += kDemuxProbeCost;
      DeliverToFilter(*it->second.filter, std::move(p));
      interrupt_debt_ += cost;
      return;
    }
    ++*demux_miss_counter_;
  }
  // An entry may be memoized only when the claiming filter and every filter
  // dispatched before it are flow-cacheable — otherwise a later packet with
  // the same 16-byte prefix could legitimately demultiplex differently.
  bool prefix_cacheable = true;
  for (auto& [fid, f] : filters_) {
    udf::RunInput in;
    in.buffers[udf::kBufMeta] = p.bytes;
    in.fuel = 4096;
    udf::RunOutput out = udf::Run(f.program, in);
    cost += out.insns * machine_->cost().downloaded_insn;
    if (out.ok && out.ret != 0) {
      if (keyable && prefix_cacheable && f.flow_cacheable) {
        flow_cache_.emplace(key, FlowEntry{fid, &f});
      }
      DeliverToFilter(f, std::move(p));
      interrupt_debt_ += cost;
      return;
    }
    prefix_cacheable = prefix_cacheable && f.flow_cacheable;
  }
  ++*unclaimed_counter_;
  if (tracer_->enabled(trace::Category::kNet)) {
    tracer_->Instant(trace::Category::kNet, trace_track_, "unclaimed",
                     machine_->engine().now(), p.bytes.size());
  }
  interrupt_debt_ += cost;
}

// ---- Quotas, revocation, abort (Sec. 3 / Sec. 3.5) ----

uint32_t XokKernel::RevocableUsage(const Env& e, RevokeResource r) const {
  switch (r) {
    case RevokeResource::kFrames:
      return e.usage.frames;
    case RevokeResource::kRegions:
      return e.usage.regions;
    case RevokeResource::kFilters:
      return e.usage.filters;
  }
  return 0;
}

void XokKernel::ClearRevokeIfCompliant(Env& e) {
  if (e.pending_revoke.has_value() &&
      RevocableUsage(e, e.pending_revoke->resource) <= e.pending_revoke->allowed) {
    DropPendingRevoke(e);
    machine_->counters().Add("xok.revocations_complied");
  }
}

void XokKernel::DropPendingRevoke(Env& e) {
  if (!e.pending_revoke.has_value()) {
    return;
  }
  revoke_deadlines_.erase({e.pending_revoke->deadline, e.id});
  e.pending_revoke.reset();
  --pending_revocations_;
}

Status XokKernel::SysSetQuota(EnvId target, const ResourceQuota& q, CredIndex cred) {
  SyscallScope scope(this, "set_quota");
  if (!EnvExists(target)) {
    return scope.Close(Status::kNotFound);
  }
  Env& t = env(target);
  if (current_ != nullptr) {
    Status s = CheckCred(*current_, cred, EnvGuardName(target), /*need_write=*/true);
    if (s != Status::kOk) {
      return scope.Close(s);
    }
    if (t.quota.locked && current_->id == target) {
      // A limited env may not lift its own limits.
      return scope.Close(Status::kPermissionDenied);
    }
  }
  if (tracer_->enabled(trace::Category::kSched) && t.quota.cpu_tickets != q.cpu_tickets) {
    tracer_->Instant(trace::Category::kSched, trace_track_, "set_tickets",
                     machine_->engine().now(),
                     (static_cast<uint64_t>(target) << 32) | q.cpu_tickets);
  }
  // A ticket change rescales the env's position in virtual time: the consumed
  // portion of its current stride (pass - global) is converted to the new
  // stride so history neither mints credit nor inflicts debt — an env
  // re-weighted from 100 tickets to 12 owes as much of its *new*, longer
  // stride as it had consumed of the old one. A blocked env keeps its stale
  // pass; the wake path clamps it against the lag cap anyway.
  const uint64_t oldeff = EffectiveTickets(t);
  const uint64_t neweff = q.cpu_tickets == 0 ? 1 : q.cpu_tickets;
  if (neweff != oldeff && t.state == EnvState::kRunnable) {
    const uint64_t old_stride = std::max<uint64_t>(1, kStrideScale / oldeff);
    const uint64_t new_stride = std::max<uint64_t>(1, kStrideScale / neweff);
    const uint64_t done = t.pass > global_pass_ ? t.pass - global_pass_ : 0;
    StrideErase(t);
    t.pass = global_pass_ + done * new_stride / old_stride;
    t.sched_seq = ++sched_seq_counter_;
    StrideInsert(t);
  }
  t.quota = q;
  return Status::kOk;
}

Status XokKernel::SysRevoke(EnvId target, RevokeResource resource, uint32_t allowed,
                            sim::Cycles grace, CredIndex cred) {
  return RevokeImpl(target, resource, allowed, grace, cred, /*from_pressure=*/false);
}

Status XokKernel::RevokeImpl(EnvId target, RevokeResource resource, uint32_t allowed,
                             sim::Cycles grace, CredIndex cred, bool from_pressure) {
  SyscallScope scope(this, "revoke");
  if (!EnvExists(target) || !env(target).alive) {
    return scope.Close(Status::kNotFound);
  }
  Env& t = env(target);
  if (current_ != nullptr) {
    Status s = CheckCred(*current_, cred, EnvGuardName(target), /*need_write=*/true);
    if (s != Status::kOk) {
      return scope.Close(s);
    }
  }
  if (RevocableUsage(t, resource) <= allowed) {
    return Status::kOk;  // already compliant; nothing to ask
  }
  if (t.pending_revoke.has_value()) {
    return scope.Close(Status::kBusy);  // one outstanding request at a time
  }
  t.pending_revoke =
      RevocationRequest{resource, allowed, machine_->engine().now() + grace, from_pressure};
  ++pending_revocations_;
  revoke_deadlines_.insert({t.pending_revoke->deadline, t.id});
  machine_->counters().Add("xok.revocations_requested");
  if (t.on_revoke) {
    // Deliver the upcall in the target's context so releases debit its ledger.
    // Software interrupts are disabled for the duration (the handler runs on the
    // requester's slice and must not be suspended mid-flight).
    const RevocationRequest req = *t.pending_revoke;  // by value: handler may clear it
    Env* saved = current_;
    current_ = &t;
    ++t.critical_depth;
    machine_->Charge(machine_->cost().upcall);
    t.on_revoke(req);
    --t.critical_depth;
    if (t.critical_depth == 0 && t.end_of_slice_pending) {
      // The handler consumed the rest of a slice; drop the deferred upcall (the
      // slice accounting restarts when the target is next scheduled).
      t.end_of_slice_pending = false;
    }
    current_ = saved;
    ClearRevokeIfCompliant(t);
  }
  return Status::kOk;
}

void XokKernel::AbortEnv(EnvId id, const char* reason) {
  auto it = envs_.find(id);
  if (it == envs_.end()) {
    return;
  }
  Env& e = *it->second;
  // Repossess everything: mappings, direct references, regions, filters, IPC.
  for (const auto& [vp, pte] : e.pt.entries()) {
    ReleaseFrame(pte.frame);
  }
  e.pt.Clear();
  for (const auto& [f, n] : e.frame_refs) {
    for (uint32_t i = 0; i < n; ++i) {
      ReleaseFrame(f);
    }
  }
  e.frame_refs.clear();
  for (auto rit = regions_.begin(); rit != regions_.end();) {
    if (rit->second.owner == id) {
      const RegionId dead = rit->first;
      rit = regions_.erase(rit);
      NotifyWatch(WatchKind::kRegion, dead);
    } else {
      ++rit;
    }
  }
  if (auto owned = filters_by_owner_.find(id); owned != filters_by_owner_.end()) {
    for (FilterId fid : owned->second) {
      NotifyWatch(WatchKind::kFilterRing, fid);
      filters_.erase(fid);
    }
    filters_by_owner_.erase(owned);
    flow_cache_.clear();
  }
  e.ipc_queue.clear();
  e.usage = ResourceUsage{};
  DropPendingRevoke(e);
  e.abort_reason = reason;
  machine_->counters().Add("xok.env_aborts");
  const bool self = (current_ == &e);
  if (e.alive) {
    FinishExit(&e, -1);
  }
  if (self) {
    for (;;) {
      sim::Fiber::Suspend();  // zombies are never scheduled again
      EXO_CHECK(false);
    }
  }
}

void XokKernel::KillAllEnvs(const char* reason) {
  EXO_CHECK(current_ == nullptr);  // host context only: no fiber survives this
  std::vector<EnvId> ids;
  ids.reserve(envs_.size());
  for (const auto& [id, e] : envs_) {
    ids.push_back(id);
  }
  for (EnvId id : ids) {
    auto it = envs_.find(id);
    if (it == envs_.end()) {
      continue;  // reaped as a side effect of an earlier abort (parent wait)
    }
    if (it->second->state != EnvState::kZombie) {
      AbortEnv(id, reason);
    }
    (void)ReapEnv(id);
  }
}

// ---- Invariant audit ----

std::string XokKernel::CheckInvariants() const {
  std::string out;
  auto fail = [&out](std::string line) {
    out += line;
    out += '\n';
  };
  const hw::PhysMem& mem = machine_->mem();
  const uint32_t nframes = mem.num_frames();

  // (1) Guards and attribution only on live frames; attributed refs <= refcount.
  std::map<hw::FrameId, uint64_t> attributed;
  for (const auto& [f, n] : host_frame_refs_) {
    attributed[f] += n;
  }
  for (const auto& [id, e] : envs_) {
    for (const auto& [f, n] : e->frame_refs) {
      attributed[f] += n;
      if (frame_guards_.count(f) == 0) {
        fail("env " + std::to_string(id) + " holds unguarded frame " + std::to_string(f));
      }
    }
    for (const auto& [vp, pte] : e->pt.entries()) {
      attributed[pte.frame] += 1;
      if (frame_guards_.count(pte.frame) == 0) {
        fail("env " + std::to_string(id) + " maps unguarded frame " + std::to_string(pte.frame));
      }
    }
  }
  for (const auto& [f, guard] : frame_guards_) {
    if (f >= nframes || !mem.allocated(f)) {
      fail("stale guard on free frame " + std::to_string(f));
    }
  }
  for (const auto& [f, n] : attributed) {
    if (f >= nframes || !mem.allocated(f)) {
      fail("attributed refs on free frame " + std::to_string(f));
    } else if (n > mem.refcount(f)) {
      fail("frame " + std::to_string(f) + ": attributed " + std::to_string(n) + " > refcount " +
           std::to_string(mem.refcount(f)));
    }
  }

  // (2) Free-list conservation.
  uint32_t live = 0;
  for (hw::FrameId f = 0; f < nframes; ++f) {
    live += mem.allocated(f) ? 1 : 0;
  }
  if (live + mem.free_frames() != nframes) {
    fail("frame conservation: " + std::to_string(live) + " live + " +
         std::to_string(mem.free_frames()) + " free != " + std::to_string(nframes));
  }

  // (3) Stored per-env ledgers match a from-scratch recount.
  for (const auto& [id, e] : envs_) {
    uint64_t direct = 0;
    for (const auto& [f, n] : e->frame_refs) {
      direct += n;
    }
    const uint64_t frames = direct + e->pt.size();
    if (frames != e->usage.frames) {
      fail("env " + std::to_string(id) + ": usage.frames " + std::to_string(e->usage.frames) +
           " != recount " + std::to_string(frames));
    }
    uint32_t regions = 0;
    uint64_t region_bytes = 0;
    for (const auto& [rid, r] : regions_) {
      if (r.owner == id) {
        ++regions;
        region_bytes += r.bytes.size();
      }
    }
    if (regions != e->usage.regions || region_bytes != e->usage.region_bytes) {
      fail("env " + std::to_string(id) + ": region ledger (" + std::to_string(e->usage.regions) +
           ", " + std::to_string(e->usage.region_bytes) + "B) != recount (" +
           std::to_string(regions) + ", " + std::to_string(region_bytes) + "B)");
    }
    uint32_t nfilters = 0;
    uint64_t ring_slots = 0;
    for (const auto& [fid, f] : filters_) {
      if (f.owner == id) {
        ++nfilters;
        ring_slots += f.ring_capacity;
      }
    }
    if (nfilters != e->usage.filters || ring_slots != e->usage.ring_slots) {
      fail("env " + std::to_string(id) + ": filter ledger (" + std::to_string(e->usage.filters) +
           ", " + std::to_string(e->usage.ring_slots) + " slots) != recount (" +
           std::to_string(nfilters) + ", " + std::to_string(ring_slots) + " slots)");
    }
    if (e->ipc_queue.size() > e->quota.ipc_depth) {
      fail("env " + std::to_string(id) + ": ipc queue " + std::to_string(e->ipc_queue.size()) +
           " over quota " + std::to_string(e->quota.ipc_depth));
    }
  }

  // (4) Scheduler consistency: alive <=> not zombie; alive envs are schedulable.
  uint32_t alive = 0;
  for (const auto& [id, e] : envs_) {
    if (e->alive != (e->state != EnvState::kZombie)) {
      fail("env " + std::to_string(id) + ": alive flag disagrees with state");
    }
    if (e->alive) {
      ++alive;
      if (std::find(run_queue_.begin(), run_queue_.end(), id) == run_queue_.end()) {
        fail("alive env " + std::to_string(id) + " missing from run queue");
      }
    }
  }
  if (alive != alive_count_) {
    fail("alive_count " + std::to_string(alive_count_) + " != recount " + std::to_string(alive));
  }

  // (5) Protection: every writable mapping is justified by a capability — held
  // by the mapped env itself, or by some env that also holds the mapped env's
  // environment capability (the parent-setup case).
  for (const auto& [id, e] : envs_) {
    const CapName env_guard = EnvGuardName(id);
    for (const auto& [vp, pte] : e->pt.entries()) {
      if (!pte.writable) {
        continue;
      }
      auto git = frame_guards_.find(pte.frame);
      if (git == frame_guards_.end()) {
        continue;  // reported above
      }
      bool justified = false;
      for (const auto& [oid, other] : envs_) {
        if (justified) {
          break;
        }
        bool frame_ok = false;
        bool env_ok = (oid == id);
        for (const Capability& cap : other->caps) {
          frame_ok = frame_ok || Dominates(cap, git->second, /*need_write=*/true);
          env_ok = env_ok || Dominates(cap, env_guard, /*need_write=*/true);
        }
        justified = frame_ok && env_ok;
      }
      if (!justified) {
        fail("env " + std::to_string(id) + " vpage " + std::to_string(vp) +
             ": writable mapping of frame " + std::to_string(pte.frame) +
             " with no justifying capability");
      }
    }
  }

  // (6) Revocation bookkeeping: the stored count, the per-env optionals, and
  // the deadline index must all agree (the index is what lets the scheduler's
  // healthy path skip the full scan, so a stale entry would silently disable
  // or misfire deadline enforcement).
  uint32_t pending = 0;
  for (const auto& [id, e] : envs_) {
    if (e->pending_revoke.has_value()) {
      ++pending;
      if (revoke_deadlines_.count({e->pending_revoke->deadline, id}) == 0) {
        fail("env " + std::to_string(id) + ": pending revocation missing from deadline index");
      }
    }
  }
  if (pending != pending_revocations_) {
    fail("pending_revocations " + std::to_string(pending_revocations_) + " != recount " +
         std::to_string(pending));
  }
  if (revoke_deadlines_.size() != pending) {
    fail("revocation deadline index holds " + std::to_string(revoke_deadlines_.size()) +
         " entries != " + std::to_string(pending) + " pending requests");
  }

  // (7) Stride-order consistency: one entry per alive env, keyed exactly by
  // its stored (pass, seq) — an env with a stale key would schedule at the
  // wrong priority or never again.
  if (stride_on_) {
    if (stride_order_.size() != alive_count_) {
      fail("stride order holds " + std::to_string(stride_order_.size()) + " entries != " +
           std::to_string(alive_count_) + " alive envs");
    }
    for (const auto& [id, e] : envs_) {
      if (e->alive && stride_order_.count({e->pass, e->sched_seq, id}) == 0) {
        fail("alive env " + std::to_string(id) + " missing from stride order");
      }
    }
  }

  // (8) Demux consistency: the owner index is an exact partition of filters_,
  // and every flow-cache entry still points at a live, cacheable filter whose
  // claim the linear walk would reproduce — a violation here means a packet
  // could be delivered to the wrong environment.
  size_t indexed = 0;
  for (const auto& [owner, fids] : filters_by_owner_) {
    for (FilterId fid : fids) {
      ++indexed;
      auto fit = filters_.find(fid);
      if (fit == filters_.end()) {
        fail("owner index names missing filter " + std::to_string(fid));
      } else if (fit->second.owner != owner) {
        fail("filter " + std::to_string(fid) + " indexed under owner " + std::to_string(owner) +
             " but owned by " + std::to_string(fit->second.owner));
      }
    }
  }
  if (indexed != filters_.size()) {
    fail("filter owner index holds " + std::to_string(indexed) + " entries != " +
         std::to_string(filters_.size()) + " filters");
  }
  for (const auto& [key, entry] : flow_cache_) {
    auto fit = filters_.find(entry.id);
    if (fit == filters_.end()) {
      fail("flow cache entry names removed filter " + std::to_string(entry.id));
      continue;
    }
    if (&fit->second != entry.filter) {
      fail("flow cache entry for filter " + std::to_string(entry.id) + " holds a stale pointer");
    }
    // Replay the walk over just the key bytes: every earlier filter must
    // reject and be cacheable, the target must accept and be cacheable.
    std::vector<uint8_t> key_bytes(kFlowKeyBytes);
    std::memcpy(key_bytes.data(), &key.lo, 8);
    std::memcpy(key_bytes.data() + 8, &key.hi, 8);
    for (const auto& [fid, f] : filters_) {
      if (!f.flow_cacheable) {
        fail("flow cache entry for filter " + std::to_string(entry.id) +
             " coexists with non-cacheable filter " + std::to_string(fid) + " at or before it");
        break;
      }
      udf::RunInput in;
      in.buffers[udf::kBufMeta] = key_bytes;
      in.fuel = 4096;
      udf::RunOutput res = udf::Run(f.program, in);
      const bool claims = res.ok && res.ret != 0;
      if (fid == entry.id) {
        if (!claims) {
          fail("flow cache entry for filter " + std::to_string(fid) +
               " memoizes a claim the program no longer makes");
        }
        break;
      }
      if (claims) {
        fail("flow cache entry for filter " + std::to_string(entry.id) +
             " shadowed by earlier filter " + std::to_string(fid));
        break;
      }
    }
  }
  return out;
}

void XokKernel::SysNull(int count) {
  const auto& c = machine_->cost();
  // Bursts are common (Sec. 6.3 issues hundreds of thousands); one span covers
  // the whole burst rather than drowning the ring in per-call records.
  const bool tracing = tracer_->enabled(trace::Category::kSyscall);
  const uint32_t track = current_ != nullptr ? current_->trace_track : trace_track_;
  if (tracing) {
    tracer_->Begin(trace::Category::kSyscall, track, "null", machine_->engine().now(),
                   static_cast<uint64_t>(count));
  }
  for (int i = 0; i < count; ++i) {
    machine_->Charge(c.trap_round_trip + c.xok_syscall_check);
    ++*syscall_counter_;
  }
  if (tracing) {
    tracer_->End(trace::Category::kSyscall, track, "null", machine_->engine().now(),
                 static_cast<uint64_t>(Status::kOk));
  }
}

sim::Cycles XokKernel::Now() const { return machine_->engine().now(); }

}  // namespace exo::xok
