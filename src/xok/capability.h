// Hierarchically-named capabilities (Sec. 5.1, after Mazieres & Kaashoek [31]).
//
// Despite the name these resemble a generalized form of UNIX user/group IDs more than
// classical object capabilities: a capability is a path in a global name hierarchy,
// and a credential grants access to a resource whose guard name it is a prefix of.
// All Xok calls require explicit credentials; a buggy child that requests write access
// to its parent's page with the wrong capability is simply denied (Sec. 3.3).
#ifndef EXO_XOK_CAPABILITY_H_
#define EXO_XOK_CAPABILITY_H_

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace exo::xok {

// A name in the hierarchy, e.g. {kUserSpace, uid} or {kFsSpace, fsid, inode_group}.
using CapName = std::vector<uint16_t>;

// Conventional top-level name spaces (pure convention; the kernel does not interpret).
constexpr uint16_t kCapRoot = 0;     // the empty-prefix superuser capability
constexpr uint16_t kCapUsers = 1;    // {kCapUsers, uid, ...}
constexpr uint16_t kCapGroups = 2;   // {kCapGroups, gid}
constexpr uint16_t kCapFs = 3;       // file-system-defined subspaces
constexpr uint16_t kCapEnvs = 4;     // per-environment private space

struct Capability {
  CapName name;
  bool write = true;  // write access implies read access

  static Capability Root() { return Capability{{}, true}; }
  static Capability For(std::initializer_list<uint16_t> parts, bool w = true) {
    return Capability{CapName(parts), w};
  }

  bool operator==(const Capability&) const = default;

  std::string ToString() const {
    std::string s = write ? "w:/" : "r:/";
    for (uint16_t p : name) {
      s += std::to_string(p);
      s += '/';
    }
    return s;
  }
};

// True when `cred` grants `need_write` access to a resource guarded by `guard_name`:
// the credential's name must be a (non-strict) prefix of the guard name, and write
// access requires a write-capable credential.
inline bool Dominates(const Capability& cred, const CapName& guard_name, bool need_write) {
  if (need_write && !cred.write) {
    return false;
  }
  if (cred.name.size() > guard_name.size()) {
    return false;
  }
  for (size_t i = 0; i < cred.name.size(); ++i) {
    if (cred.name[i] != guard_name[i]) {
      return false;
    }
  }
  return true;
}

// Credential selector passed on every syscall. A non-negative value names one
// capability in the caller's list (the explicit-credential discipline the paper
// advocates); kCredAny tries each held capability in order, charging per check.
using CredIndex = int32_t;
constexpr CredIndex kCredAny = -1;

}  // namespace exo::xok

#endif  // EXO_XOK_CAPABILITY_H_
