// XokKernel: the exokernel proper (Sec. 3, Sec. 5.1).
//
// Xok multiplexes the physical resources of one simulated machine: CPU time (round-
// robin slices with begin/end-of-slice upcalls and directed yield), physical memory
// (explicit frame allocation guarded by capabilities; page tables updated only through
// system calls), the network (dynamic packet filters demultiplex frames into per-
// filter packet rings), plus the protected-sharing primitives of Sec. 3.3: software
// regions, hierarchically-named capabilities with explicit credentials on every call,
// wakeup predicates, and robust critical sections.
//
// Everything here follows the exokernel principles: the kernel tracks ownership and
// performs access control, but management (what to map where, when to yield, how to
// lay out data) belongs to the applications. Kernel data structures (environment
// table, page tables, frame guards, packet rings) are exposed read-only to
// applications, which is why many accessors below are free reads rather than
// syscalls.
//
// Simulation note: "user code" runs on fibers; a system call is a method on this class
// that charges the trap cost, validates explicit credentials, and bumps the
// "xok.syscalls" counter. User code never touches kernel state except through these
// methods.
#ifndef EXO_XOK_KERNEL_H_
#define EXO_XOK_KERNEL_H_

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "hw/machine.h"
#include "sim/status.h"
#include "udf/insn.h"
#include "xok/env.h"

namespace exo::xok {

using RegionId = uint32_t;
using FilterId = uint32_t;

struct PtOp {
  enum class Kind : uint8_t { kInsert, kProtect, kRemove } kind = Kind::kInsert;
  VPage vpage = 0;
  Pte pte;  // for insert/protect
};

// One installed dynamic packet filter and its packet ring (Sec. 5.1).
struct PacketFilter {
  FilterId id = 0;
  EnvId owner = kInvalidEnv;
  udf::Program program;
  std::deque<hw::Packet> ring;  // NIC DMAs packets here; app consumes
  uint32_t ring_capacity = 64;
  uint64_t delivered = 0;
  uint64_t dropped = 0;
};

class XokKernel {
 public:
  explicit XokKernel(hw::Machine* machine);
  ~XokKernel();

  XokKernel(const XokKernel&) = delete;
  XokKernel& operator=(const XokKernel&) = delete;

  // ---- Environment lifecycle (sys_env_alloc and friends) ----

  // Creates an environment holding the given capabilities. The body runs on its own
  // fiber once Run() schedules it.
  EnvId CreateEnv(EnvId parent, std::vector<Capability> caps, std::function<void()> body);

  Env& env(EnvId id);
  const Env& env(EnvId id) const;
  bool EnvExists(EnvId id) const;
  uint32_t alive_count() const { return alive_count_; }

  // Reaps a zombie environment: frees its frames and kernel state. Called by the
  // parent libOS (wait) or the host driver for top-level environments.
  [[nodiscard]] Status ReapEnv(EnvId id);

  // ---- Host driver ----

  // Schedules environments until none are alive. The host test/bench driver calls
  // this once after creating the initial environment(s).
  void Run();

  // The environment whose fiber is currently executing (nullptr in host context).
  Env* current() { return current_; }
  EnvId current_id() const { return current_ == nullptr ? kInvalidEnv : current_->id; }

  // ---- CPU multiplexing (called from env fibers) ----

  // Charges user-mode computation, delivering end-of-slice upcalls and yielding at
  // quantum boundaries (deferred while in a critical section).
  void ChargeCpu(sim::Cycles cycles);

  // Gives up the rest of the slice; optionally a directed yield to a specific
  // environment (used by ExOS pipes, Sec. 5.2.1).
  void SysYield(EnvId directed = kInvalidEnv);

  // Blocks the calling environment until its wakeup predicate evaluates true.
  void SysSleep(WakeupPredicate predicate);

  // Terminates the calling environment; its fiber never resumes.
  [[noreturn]] void SysExit(int code);

  // Blocks until the child is a zombie, then reaps it and returns its exit code.
  [[nodiscard]] Result<int> SysWait(EnvId child);

  // Robust critical sections: disable/enable software interrupts (Sec. 3.3). These
  // are env-local flag flips visible to the kernel, not syscalls.
  void EnterCritical();
  void ExitCritical();

  // ---- Physical memory ----

  [[nodiscard]] Result<hw::FrameId> SysFrameAlloc(CredIndex cred, CapName guard);
  [[nodiscard]] Status SysFrameFree(hw::FrameId frame, CredIndex cred);
  // Extra reference for sharing (e.g. COW); freeing decrements.
  [[nodiscard]] Status SysFrameRef(hw::FrameId frame, CredIndex cred);
  const CapName& FrameGuard(hw::FrameId frame) const;
  uint32_t FreeFrameCount() const;  // exposed free list (no syscall)

  [[nodiscard]] Status SysPtUpdate(EnvId target, const PtOp& op, CredIndex cred);
  // Batched page-table updates amortize the trap over many entries (Sec. 5.2.1).
  [[nodiscard]] Status SysPtBatch(EnvId target, std::span<const PtOp> ops, CredIndex cred);

  // Walks `env`'s page table to move bytes between a host buffer and mapped frames,
  // taking (and charging) page faults through the environment's handler exactly as
  // hardware would. Used by libOS data paths.
  [[nodiscard]] Status AccessUserMemory(EnvId id, uint64_t vaddr, std::span<uint8_t> buf, bool write,
                          bool charge_copy = true);

  // ---- Software regions (sub-page protection, Sec. 3.3) ----

  [[nodiscard]] Result<RegionId> SysRegionCreate(uint32_t size, CapName guard, CredIndex cred);
  [[nodiscard]] Status SysRegionWrite(RegionId rid, uint32_t off, std::span<const uint8_t> data,
                        CredIndex cred);
  [[nodiscard]] Status SysRegionRead(RegionId rid, uint32_t off, std::span<uint8_t> out, CredIndex cred);
  [[nodiscard]] Status SysRegionDestroy(RegionId rid, CredIndex cred);
  // Exposed state: regions are readable data structures for predicate windows.
  const std::vector<uint8_t>* RegionBytes(RegionId rid) const;

  // ---- IPC ----

  [[nodiscard]] Status SysIpcSend(EnvId to, const IpcMessage& msg, CredIndex cred);
  // Non-blocking receive from own queue.
  [[nodiscard]] Result<IpcMessage> SysIpcRecv();

  // ---- Network ----

  // Installs a packet filter; the program must pass the deterministic-policy
  // verifier. Filters are dispatched in installation order; the kernel inspects
  // programs at install time, which is why it can trust their claims (Sec. 9.3).
  [[nodiscard]] Result<FilterId> SysFilterInstall(udf::Program program, CredIndex cred);
  [[nodiscard]] Status SysFilterRemove(FilterId id, CredIndex cred);
  // Consumes the next packet from the filter's ring (kWouldBlock if empty).
  [[nodiscard]] Result<hw::Packet> SysRingConsume(FilterId id, CredIndex cred);
  const PacketFilter* Filter(FilterId id) const;  // exposed (predicate windows)

  // Transmits a frame. Data is gathered by DMA; the CPU does not touch the bytes
  // (copies, if any, are charged by the protocol library that built the frame).
  [[nodiscard]] Status SysNicTransmit(uint32_t nic, hw::Packet packet);

  // ---- Misc ----

  // Null syscall: trap + credential check only. Sections 6.1/6.3 use bursts of these
  // to model the cost of protecting writes to shared abstractions.
  void SysNull(int count = 1);

  // Exposed clock (reading the cycle counter needs no syscall).
  sim::Cycles Now() const;

  hw::Machine& machine() { return *machine_; }
  sim::Counters& counters() { return machine_->counters(); }

  // Charges syscall entry/exit + credential check and counts it. Public so that
  // sibling kernel subsystems (XN) charge through the same path.
  void ChargeSyscall(const char* name);

  // Validates that `cred` (an index into env's capability list, or kCredAny) grants
  // `need_write` access to `guard`, charging per capability comparison.
  [[nodiscard]] Status CheckCred(const Env& e, CredIndex cred, const CapName& guard, bool need_write);

 private:
  void FinishExit(Env* e, int code);
  Env* PickNext();
  bool EvalPredicate(Env* e);
  void DeliverEndOfSlice(Env* e);
  void OnPacket(uint32_t nic, hw::Packet p);
  [[nodiscard]] Status PtApply(Env& target, const PtOp& op, CredIndex cred);

  hw::Machine* machine_;
  std::map<EnvId, std::unique_ptr<Env>> envs_;
  std::deque<EnvId> run_queue_;  // round-robin order over alive envs
  Env* current_ = nullptr;
  EnvId last_scheduled_ = kInvalidEnv;
  EnvId next_env_id_ = 1;
  uint32_t alive_count_ = 0;

  std::map<hw::FrameId, CapName> frame_guards_;
  std::map<RegionId, std::pair<CapName, std::vector<uint8_t>>> regions_;
  RegionId next_region_id_ = 1;
  std::vector<PacketFilter> filters_;
  FilterId next_filter_id_ = 1;

  // CPU time consumed by interrupt-context demultiplexing, folded into the next
  // synchronous charge (we cannot advance the clock from inside an event callback).
  sim::Cycles interrupt_debt_ = 0;

  uint64_t* syscall_counter_ = nullptr;
  uint64_t* ctx_switch_counter_ = nullptr;
  uint64_t* fault_counter_ = nullptr;
};

}  // namespace exo::xok

#endif  // EXO_XOK_KERNEL_H_
