// XokKernel: the exokernel proper (Sec. 3, Sec. 5.1).
//
// Xok multiplexes the physical resources of one simulated machine: CPU time
// (proportional-share stride scheduling over per-env quota tickets, with
// begin/end-of-slice upcalls and directed yield; EXO_SCHED_STRIDE=0 recovers
// the paper-faithful round-robin quantum list bit-exactly), physical memory
// (explicit frame allocation guarded by capabilities; page tables updated only through
// system calls), the network (dynamic packet filters demultiplex frames into per-
// filter packet rings), plus the protected-sharing primitives of Sec. 3.3: software
// regions, hierarchically-named capabilities with explicit credentials on every call,
// wakeup predicates, and robust critical sections.
//
// Everything here follows the exokernel principles: the kernel tracks ownership and
// performs access control, but management (what to map where, when to yield, how to
// lay out data) belongs to the applications. Kernel data structures (environment
// table, page tables, frame guards, packet rings) are exposed read-only to
// applications, which is why many accessors below are free reads rather than
// syscalls.
//
// Simulation note: "user code" runs on fibers; a system call is a method on this class
// that charges the trap cost, validates explicit credentials, and bumps the
// "xok.syscalls" counter. User code never touches kernel state except through these
// methods.
#ifndef EXO_XOK_KERNEL_H_
#define EXO_XOK_KERNEL_H_

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <span>
#include <string>
#include <tuple>
#include <unordered_map>
#include <utility>
#include <vector>

#include "hw/machine.h"
#include "sim/status.h"
#include "udf/insn.h"
#include "xok/env.h"

namespace exo::xok {

using RegionId = uint32_t;
using FilterId = uint32_t;

// Syscall-surface bounds: the kernel rejects arguments beyond these instead of
// letting a hostile libOS grow kernel structures without limit.
constexpr size_t kMaxGuardName = 64;            // capability-name components
constexpr size_t kMaxFilterProgramInsns = 1024; // packet-filter program length
// Watchdog bounds for robust critical sections (Sec. 3.3): a libOS that nests
// deeper than this, or holds software interrupts disabled across this many
// consecutive quanta, is presumed runaway and aborted.
constexpr uint32_t kMaxCriticalDepth = 1024;
constexpr uint32_t kMaxCriticalDeferrals = 64;

// Stride-scheduler constants. stride = kStrideScale / tickets, so an env with
// twice the tickets accrues pass half as fast and runs twice as often. Tickets
// above kStrideScale would round the stride to zero (the env's pass would
// never advance); the scheduler floors the stride at 1 instead.
constexpr uint64_t kStrideScale = uint64_t{1} << 20;

// How far below the virtual clock a waking env's pass may sit (its banked
// credit from consuming less than its ticket share). Under the cap, sleepers
// keep their credit and preempt CPU-bound envs the moment they wake; above
// it the excess is forfeited, so a hostile env cannot convert a long idle
// period into a starvation burst — at minimum share (stride == kStrideScale)
// the burst is capped at kMaxSchedLag / kStrideScale of a slice, and
// proportionally more quanta only for envs holding proportionally more
// tickets.
constexpr uint64_t kMaxSchedLag = kStrideScale / 4;

// Watermark policy for pressure-driven frame revocation. Disabled until the
// host arms it (low_frames == 0). While the free list sits below `low_frames`
// the kernel asks the env most over its tickets-proportional frame share to
// shed down to that share (SysRevoke → on_revoke → deadline → abort), one
// request per `min_interval`, until the free list recovers past `high_frames`
// (hysteresis: low != high keeps the monitor from flapping at the boundary).
struct MemoryPressurePolicy {
  uint32_t low_frames = 0;           // arm: revoke while free < low
  uint32_t high_frames = 0;          // disarm: stop once free >= high
  sim::Cycles grace = 400'000;       // revocation deadline (2 ms at 200 MHz)
  sim::Cycles min_interval = 200'000;  // pacing between pressure revocations
};

struct PtOp {
  enum class Kind : uint8_t { kInsert, kProtect, kRemove } kind = Kind::kInsert;
  VPage vpage = 0;
  Pte pte;  // for insert/protect
};

// A software region (Sec. 3.3): capability-guarded sub-page memory. `owner` is
// the env whose quota ledger carries it (kInvalidEnv: host/registry-owned).
struct Region {
  CapName guard;
  EnvId owner = kInvalidEnv;
  std::vector<uint8_t> bytes;
};

// One installed dynamic packet filter and its packet ring (Sec. 5.1).
struct PacketFilter {
  FilterId id = 0;
  EnvId owner = kInvalidEnv;
  udf::Program program;
  std::deque<hw::Packet> ring;  // NIC DMAs packets here; app consumes
  uint32_t ring_capacity = 64;
  uint64_t delivered = 0;
  uint64_t dropped = 0;
  // True when the program provably reads only fixed offsets inside the
  // flow-key prefix (first kFlowKeyBytes of the frame), making its verdict a
  // pure function of the flow key — the property the demux flow cache relies
  // on. Computed once at install time from the verified program.
  bool flow_cacheable = false;
};

// Demultiplexing is per-packet work: at fleet scale the linear walk over every
// installed filter program dominates delivery. The flow cache memoizes
// "flow-key prefix -> claiming filter" (DPF-style; Engler & Kaashoek, SIGCOMM
// '96): a steady-state packet costs one hash probe instead of up to F program
// evaluations. An entry is installed only when the claiming filter AND every
// filter dispatched before it are flow_cacheable, so the memoized verdict is
// exactly what the walk would recompute. The cache is flushed on any filter
// install/remove and on env teardown (stale entries would misdeliver).
constexpr uint32_t kFlowKeyBytes = 16;  // proto + src/dst ip + pad + ports
// Charged on a flow-cache hit in place of the filter-program evaluations: one
// hash + one compare of the 16-byte key.
constexpr sim::Cycles kDemuxProbeCost = 40;

struct FlowKey {
  uint64_t lo = 0;
  uint64_t hi = 0;
  bool operator==(const FlowKey&) const = default;
};

struct FlowKeyHash {
  size_t operator()(const FlowKey& k) const {
    uint64_t x = k.lo ^ (k.hi * 0x9e3779b97f4a7c15ULL);
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    return static_cast<size_t>(x);
  }
};

class XokKernel {
 public:
  explicit XokKernel(hw::Machine* machine);
  ~XokKernel();

  XokKernel(const XokKernel&) = delete;
  XokKernel& operator=(const XokKernel&) = delete;

  // ---- Environment lifecycle (sys_env_alloc and friends) ----

  // Creates an environment holding the given capabilities. The body runs on its own
  // fiber once Run() schedules it.
  EnvId CreateEnv(EnvId parent, std::vector<Capability> caps, std::function<void()> body);

  Env& env(EnvId id);
  const Env& env(EnvId id) const;
  bool EnvExists(EnvId id) const;
  uint32_t alive_count() const { return alive_count_; }

  // Reaps a zombie environment: frees its frames and kernel state. Called by the
  // parent libOS (wait) or the host driver for top-level environments.
  [[nodiscard]] Status ReapEnv(EnvId id);

  // Forcibly terminates an environment, repossessing everything it holds: page-
  // table mappings, direct frame references, regions, filters, queued IPC. Unlike
  // ReapEnv after a voluntary exit, nothing survives. This is the kernel's last
  // resort in the abort protocol (Sec. 3.5) and the watchdogs' teeth. Safe on
  // zombies (reclaims what a voluntary exit left shared). Never returns when the
  // env aborts itself (the calling fiber suspends forever).
  void AbortEnv(EnvId id, const char* reason);

  // Machine death: aborts and reaps every environment, in id order, from host
  // context (the machine-kill listener — never from an env's own fiber). After
  // this the kernel holds no envs; whatever survives the crash lives on the
  // disks, which is exactly the surface the reboot-time fsck recovers.
  void KillAllEnvs(const char* reason);

  // ---- Resource quotas + revocation (Sec. 3: visible revocation; Sec. 3.5) ----

  // Replaces `target`'s quota. Callable from the host, or by an env holding the
  // target's environment capability — except that an env whose quota is `locked`
  // may not change its own.
  [[nodiscard]] Status SysSetQuota(EnvId target, const ResourceQuota& q, CredIndex cred);

  // Asks `target` (via its on_revoke upcall) to shed `resource` down to `allowed`
  // within `grace` cycles. Returns kOk immediately if already compliant, kBusy if
  // a revocation is outstanding. A non-compliant env is aborted by the scheduler
  // once the deadline passes.
  [[nodiscard]] Status SysRevoke(EnvId target, RevokeResource resource, uint32_t allowed,
                                 sim::Cycles grace, CredIndex cred);

  // Audits every kernel data structure against its definition: frame refcounts vs
  // guards vs the free list, per-env ledgers vs a from-scratch recount, zombie/
  // alive/run-queue consistency, capability justification for writable mappings,
  // and the revocation bookkeeping. Returns "" when clean, else one violation per
  // line. Charges nothing (host diagnostic, not a syscall) — the fuzzer calls it
  // after every step.
  std::string CheckInvariants() const;

  // ---- Host driver ----

  // Schedules environments until none are alive. The host test/bench driver calls
  // this once after creating the initial environment(s).
  void Run();

  // The environment whose fiber is currently executing (nullptr in host context).
  Env* current() { return current_; }
  EnvId current_id() const { return current_ == nullptr ? kInvalidEnv : current_->id; }

  // Lowers the idle-time bound after which Run() declares deadlock (tests use a
  // small bound to exercise the diagnostic without minutes of idle scanning).
  void SetDeadlockBound(sim::Cycles cycles) { deadlock_bound_ = cycles; }

  // ---- Proportional-share scheduling + memory pressure ----

  // Whether the stride scheduler is active. Defaults to on; the
  // EXO_SCHED_STRIDE=0 environment switch (read once at construction) or
  // SetStrideScheduling(false) recovers the legacy round-robin rotation
  // bit-exactly, which is what keeps the fig2–5 goldens byte-identical.
  bool stride_scheduling() const { return stride_on_; }
  // Host-only override (benches compare both modes in one process). Rebuilds
  // the stride order from scratch, so it is legal at any host-context point.
  void SetStrideScheduling(bool on);

  // Arms (or, with low_frames == 0, disarms) the pressure monitor.
  void SetMemoryPressurePolicy(const MemoryPressurePolicy& p) { pressure_policy_ = p; }
  const MemoryPressurePolicy& memory_pressure_policy() const { return pressure_policy_; }
  // Non-empty once Run() has diagnosed a deadlock (all remaining envs were
  // aborted instead of spinning forever).
  const std::string& deadlock_report() const { return deadlock_report_; }

  // ---- CPU multiplexing (called from env fibers) ----

  // Charges user-mode computation, delivering end-of-slice upcalls and yielding at
  // quantum boundaries (deferred while in a critical section).
  void ChargeCpu(sim::Cycles cycles);

  // Gives up the rest of the slice; optionally a directed yield to a specific
  // environment (used by ExOS pipes, Sec. 5.2.1).
  void SysYield(EnvId directed = kInvalidEnv);

  // Blocks the calling environment until its wakeup predicate evaluates true.
  void SysSleep(WakeupPredicate predicate);

  // Terminates the calling environment; its fiber never resumes.
  [[noreturn]] void SysExit(int code);

  // Blocks until the child is a zombie, then reaps it and returns its exit code.
  [[nodiscard]] Result<int> SysWait(EnvId child);

  // Robust critical sections: disable/enable software interrupts (Sec. 3.3). These
  // are env-local flag flips visible to the kernel, not syscalls.
  void EnterCritical();
  void ExitCritical();

  // ---- Physical memory ----

  // `shared = true` attributes the reference to the host/registry ledger instead
  // of the calling env's quota — used by libOS-shared caches (the buffer
  // registry) whose frames outlive any single environment.
  [[nodiscard]] Result<hw::FrameId> SysFrameAlloc(CredIndex cred, CapName guard,
                                                  bool shared = false);
  [[nodiscard]] Status SysFrameFree(hw::FrameId frame, CredIndex cred);
  // Extra reference for sharing (e.g. COW); freeing decrements.
  [[nodiscard]] Status SysFrameRef(hw::FrameId frame, CredIndex cred);
  const CapName& FrameGuard(hw::FrameId frame) const;
  uint32_t FreeFrameCount() const;  // exposed free list (no syscall)

  // Trusted-sibling release path (XN, the buffer registry, host drivers): drops
  // one reference through the kernel's accounting so guards and ledgers stay
  // exact when the refcount hits zero. `attribution` names the env whose ledger
  // carried the reference (kInvalidEnv: the host/registry ledger). Charges
  // nothing; callers charge through their own cost models.
  void FrameUnref(hw::FrameId frame, EnvId attribution = kInvalidEnv);

  [[nodiscard]] Status SysPtUpdate(EnvId target, const PtOp& op, CredIndex cred);
  // Batched page-table updates amortize the trap over many entries (Sec. 5.2.1).
  [[nodiscard]] Status SysPtBatch(EnvId target, std::span<const PtOp> ops, CredIndex cred);

  // Walks `env`'s page table to move bytes between a host buffer and mapped frames,
  // taking (and charging) page faults through the environment's handler exactly as
  // hardware would. Used by libOS data paths.
  [[nodiscard]] Status AccessUserMemory(EnvId id, uint64_t vaddr, std::span<uint8_t> buf, bool write,
                          bool charge_copy = true);

  // ---- Software regions (sub-page protection, Sec. 3.3) ----

  [[nodiscard]] Result<RegionId> SysRegionCreate(uint32_t size, CapName guard, CredIndex cred);
  [[nodiscard]] Status SysRegionWrite(RegionId rid, uint32_t off, std::span<const uint8_t> data,
                        CredIndex cred);
  [[nodiscard]] Status SysRegionRead(RegionId rid, uint32_t off, std::span<uint8_t> out, CredIndex cred);
  [[nodiscard]] Status SysRegionDestroy(RegionId rid, CredIndex cred);
  // Exposed state: regions are readable data structures for predicate windows.
  const std::vector<uint8_t>* RegionBytes(RegionId rid) const;

  // ---- IPC ----

  [[nodiscard]] Status SysIpcSend(EnvId to, const IpcMessage& msg, CredIndex cred);
  // Non-blocking receive from own queue.
  [[nodiscard]] Result<IpcMessage> SysIpcRecv();

  // ---- Network ----

  // Installs a packet filter; the program must pass the deterministic-policy
  // verifier. Filters are dispatched in installation order; the kernel inspects
  // programs at install time, which is why it can trust their claims (Sec. 9.3).
  [[nodiscard]] Result<FilterId> SysFilterInstall(udf::Program program, CredIndex cred);
  [[nodiscard]] Status SysFilterRemove(FilterId id, CredIndex cred);
  // Consumes the next packet from the filter's ring (kWouldBlock if empty).
  [[nodiscard]] Result<hw::Packet> SysRingConsume(FilterId id, CredIndex cred);
  const PacketFilter* Filter(FilterId id) const;  // exposed (predicate windows)

  // Whether the demux flow cache is active. Defaults to on; EXO_DEMUX_CACHE=0
  // (read once at construction) or SetDemuxCache(false) recovers the linear
  // filter walk for every packet. Host-only toggle; flushes the cache.
  bool demux_cache() const { return demux_cache_on_; }
  void SetDemuxCache(bool on) {
    demux_cache_on_ = on;
    flow_cache_.clear();
  }
  size_t flow_cache_size() const { return flow_cache_.size(); }

  // Transmits a frame. Data is gathered by DMA; the CPU does not touch the bytes
  // (copies, if any, are charged by the protocol library that built the frame).
  [[nodiscard]] Status SysNicTransmit(uint32_t nic, hw::Packet packet);

  // ---- Misc ----

  // Null syscall: trap + credential check only. Sections 6.1/6.3 use bursts of these
  // to model the cost of protecting writes to shared abstractions.
  void SysNull(int count = 1);

  // Exposed clock (reading the cycle counter needs no syscall).
  sim::Cycles Now() const;

  hw::Machine& machine() { return *machine_; }
  sim::Counters& counters() { return machine_->counters(); }

  // Charges syscall entry/exit + credential check and counts it. Public so that
  // sibling kernel subsystems (XN) charge through the same path.
  void ChargeSyscall(const char* name);

  // RAII span around one system call: charges entry cost exactly like
  // ChargeSyscall, then opens a `syscall` span on the calling environment's
  // track. The destructor closes the span with Status::kOk; error paths close
  // early via `return scope.Close(status);`, and syscalls that suspend the
  // fiber close explicitly before blocking so no span stays open across a
  // context switch. Closing also feeds the "syscall.latency_cycles" histogram.
  class SyscallScope {
   public:
    SyscallScope(XokKernel* kernel, const char* name);
    ~SyscallScope() { Close(Status::kOk); }
    SyscallScope(const SyscallScope&) = delete;
    SyscallScope& operator=(const SyscallScope&) = delete;
    // Idempotent; returns `s` so callers can `return scope.Close(s);`.
    Status Close(Status s);

   private:
    XokKernel* kernel_;
    const char* name_;
    uint32_t track_ = 0;
    sim::Cycles start_ = 0;
    bool open_ = false;
  };

  // Validates that `cred` (an index into env's capability list, or kCredAny) grants
  // `need_write` access to `guard`, charging per capability comparison.
  [[nodiscard]] Status CheckCred(const Env& e, CredIndex cred, const CapName& guard, bool need_write);

 private:
  void FinishExit(Env* e, int code);
  Env* PickNext();
  bool EvalPredicate(Env* e);
  // Effective ticket count (the zero-ticket floor) and the resulting stride.
  static uint64_t EffectiveTickets(const Env& e) {
    return e.quota.cpu_tickets == 0 ? 1 : e.quota.cpu_tickets;
  }
  static uint64_t StrideOf(const Env& e) {
    const uint64_t s = kStrideScale / EffectiveTickets(e);
    return s == 0 ? 1 : s;
  }
  // Stride-order maintenance: the set mirrors (pass, sched_seq) of every alive
  // env, so every pass/seq change must erase + reinsert through these.
  void StrideInsert(const Env& e);
  void StrideErase(const Env& e);
  // Pass bookkeeping at the two scheduling edges: `used` CPU cycles consumed
  // when an env is descheduled, and the bounded-lag clamp when a blocked env
  // wakes (a waker keeps its banked credit, capped at kMaxSchedLag behind the
  // virtual clock so a long sleep cannot be cashed in as a starvation burst).
  void StrideCharge(Env* e, sim::Cycles used);
  void StrideWake(Env* e);
  // Issues one pressure revocation when the free list is below the low
  // watermark (host context, called from the Run() loop; O(1) while disarmed
  // or healthy).
  void MaybeRelievePressure();
  // SysRevoke body; the pressure monitor stamps its requests so deadline
  // aborts can be attributed (the flag must be set before the upcall fires).
  Status RevokeImpl(EnvId target, RevokeResource resource, uint32_t allowed,
                    sim::Cycles grace, CredIndex cred, bool from_pressure);
  // Dirty-window predicate indexing: a blocked env with declared watches is
  // re-evaluated only after one of its watched objects is written (or past its
  // deadline). Registration happens in SysSleep; every write path to a watchable
  // object calls NotifyWatch.
  void RegisterWatches(Env* e);
  void UnregisterWatches(Env* e);
  void NotifyWatch(WatchKind kind, uint32_t id);
  void DeliverEndOfSlice(Env* e);
  void OnPacket(uint32_t nic, hw::Packet p);
  void DeliverToFilter(PacketFilter& f, hw::Packet p);
  void EraseFilter(FilterId id);
  // True when every load in `p` reads a fixed offset inside the flow-key
  // prefix, so the program's verdict is a pure function of the first
  // kFlowKeyBytes of the packet.
  static bool FlowCacheable(const udf::Program& p);
  [[nodiscard]] Status PtApply(Env& target, const PtOp& op, CredIndex cred);

  // Drops one refcount; when the frame dies, retires its guard and any residual
  // host attribution so no stale bookkeeping survives. Every kernel-side Unref
  // goes through here.
  void ReleaseFrame(hw::FrameId frame);
  // Best-effort ledger debit when a reference is released: the caller's own
  // direct ref first, then the host ledger, then any env's (a capability holder
  // may free references it did not take). Returns false when no ledger accounts
  // for the frame — its remaining references are page mappings or kernel-held,
  // and an untrusted free must not steal them.
  bool DebitFrameRef(hw::FrameId frame, Env* preferred);
  uint32_t RevocableUsage(const Env& e, RevokeResource r) const;
  // Clears a pending revocation the moment the env becomes compliant.
  void ClearRevokeIfCompliant(Env& e);
  // The single teardown path for a pending revocation: drops it from the env,
  // the deadline index, and the outstanding count together so the three can
  // never disagree (CheckInvariants cross-checks all of them).
  void DropPendingRevoke(Env& e);
  // Host-context scheduler duties: abort envs past their revocation deadline;
  // reap orphaned zombies queued by FinishExit.
  void EnforceRevocations();
  void DrainPendingReaps();

  hw::Machine* machine_;
  std::map<EnvId, std::unique_ptr<Env>> envs_;
  std::deque<EnvId> run_queue_;  // round-robin order over alive envs
  Env* current_ = nullptr;
  EnvId last_scheduled_ = kInvalidEnv;
  EnvId next_env_id_ = 1;
  uint32_t alive_count_ = 0;

  // Stride scheduler: alive envs ordered by (pass, sched_seq, id). The
  // scheduler picks the first schedulable entry; round-robin mode leaves the
  // set maintained but unread so the two modes share every other code path.
  bool stride_on_ = true;
  std::set<std::tuple<uint64_t, uint64_t, EnvId>> stride_order_;
  // Virtual clock: the pass of the most-entitled env actually served, i.e.
  // max over picks of the picked env's pass. Tracking the service point (the
  // way CFS tracks min_vruntime) rather than integrating a fair-share rate
  // keeps the clock honest when envs use less than their entitlement — an
  // integrated clock races ahead of every real pass and turns the wake-lag
  // cap into a credit shredder.
  uint64_t global_pass_ = 0;
  uint64_t sched_seq_counter_ = 0;  // tie-break source, bumped per deschedule

  // Memory-pressure monitor state (policy armed by the host).
  MemoryPressurePolicy pressure_policy_;
  bool pressure_active_ = false;          // hysteresis latch
  sim::Cycles last_pressure_revoke_ = 0;  // pacing

  std::map<hw::FrameId, CapName> frame_guards_;
  // References held by the host/registry rather than any env (shared caches,
  // frames surviving a reaped env). CheckInvariants() sums this with the per-env
  // ledgers against the real refcounts.
  std::map<hw::FrameId, uint32_t> host_frame_refs_;
  std::map<RegionId, Region> regions_;
  RegionId next_region_id_ = 1;
  // Keyed by id (== install order) so dispatch iterates in install order while
  // remove/lookup are O(log F) instead of the old vector scan; the per-owner
  // index makes env teardown proportional to the env's own filters.
  std::map<FilterId, PacketFilter> filters_;
  std::map<EnvId, std::set<FilterId>> filters_by_owner_;
  FilterId next_filter_id_ = 1;

  // Demux flow cache: flow-key prefix -> claiming filter. Pointers into
  // filters_ are stable (std::map) and every mutation of filters_ flushes the
  // cache, so an entry can never dangle.
  struct FlowEntry {
    FilterId id = 0;
    PacketFilter* filter = nullptr;
  };
  bool demux_cache_on_ = true;
  std::unordered_map<FlowKey, FlowEntry, FlowKeyHash> flow_cache_;

  // Orphaned zombies queued for host-context reaping (their fibers may be the
  // one executing when they die, so FinishExit cannot erase them inline).
  std::deque<EnvId> pending_reaps_;
  uint32_t pending_revocations_ = 0;
  // Deadline index over envs with a pending revocation, so the scheduler's
  // healthy path peeks at the earliest deadline in O(1) instead of scanning
  // every env per pass. Kept consistent with the per-env pending_revoke
  // optionals by DropPendingRevoke; CheckInvariants audits the pairing.
  std::set<std::pair<sim::Cycles, EnvId>> revoke_deadlines_;
  sim::Cycles deadlock_bound_ = 24'000'000'000ULL;  // 120 s at 200 MHz
  std::string deadlock_report_;

  // CPU time consumed by interrupt-context demultiplexing, folded into the next
  // synchronous charge (we cannot advance the clock from inside an event callback).
  sim::Cycles interrupt_debt_ = 0;

  // Watch key -> blocked envs to mark dirty on write. Entries are pruned when a
  // watcher wakes or dies (UnregisterWatches) and lazily inside NotifyWatch.
  std::map<std::pair<uint8_t, uint32_t>, std::vector<EnvId>> watchers_;

  uint64_t* syscall_counter_ = nullptr;
  uint64_t* ctx_switch_counter_ = nullptr;
  uint64_t* fault_counter_ = nullptr;
  uint64_t* predicate_eval_counter_ = nullptr;
  uint64_t* predicate_skip_counter_ = nullptr;
  uint64_t* demux_counter_ = nullptr;
  uint64_t* demux_hit_counter_ = nullptr;
  uint64_t* demux_miss_counter_ = nullptr;
  uint64_t* unclaimed_counter_ = nullptr;
  uint64_t* ring_drop_counter_ = nullptr;
  uint64_t* ipc_rejected_counter_ = nullptr;
  uint64_t* orphan_reap_counter_ = nullptr;
  uint64_t* stride_pick_counter_ = nullptr;
  uint64_t* wake_jump_counter_ = nullptr;
  uint64_t* pressure_revoke_counter_ = nullptr;
  uint64_t* pressure_abort_counter_ = nullptr;

  // The machine's tracer (never null) and the kernel's own track; per-env
  // tracks live in Env::trace_track.
  trace::Tracer* tracer_ = nullptr;
  uint32_t trace_track_ = 0;
  trace::LatencyHistogram* syscall_hist_ = nullptr;
};

}  // namespace exo::xok

#endif  // EXO_XOK_KERNEL_H_
