// Per-environment page table.
//
// On the x86 the page-table structure is architecturally defined and refills are done
// in hardware, so Xok cannot let applications write page tables directly; all updates
// go through system calls (Sec. 5.1). Entries carry hardware protection bits plus two
// software-only bits that the kernel ignores but libOSes may use freely — ExOS uses
// one as its copy-on-write mark (Sec. 9.3, "Provide space for application data in
// kernel structures").
#ifndef EXO_XOK_PAGE_TABLE_H_
#define EXO_XOK_PAGE_TABLE_H_

#include <cstdint>
#include <map>

#include "hw/phys_mem.h"

namespace exo::xok {

using VPage = uint32_t;
constexpr uint32_t kPageShift = 12;

struct Pte {
  hw::FrameId frame = hw::kInvalidFrame;
  bool readable = false;
  bool writable = false;
  uint8_t software_bits = 0;  // libOS-defined; bit 0 is conventionally "copy-on-write"
};

constexpr uint8_t kSwBitCow = 1;

class PageTable {
 public:
  const Pte* Lookup(VPage vp) const {
    auto it = entries_.find(vp);
    return it == entries_.end() ? nullptr : &it->second;
  }
  Pte* LookupMutable(VPage vp) {
    auto it = entries_.find(vp);
    return it == entries_.end() ? nullptr : &it->second;
  }
  void Insert(VPage vp, const Pte& pte) { entries_[vp] = pte; }
  void Remove(VPage vp) { entries_.erase(vp); }
  void Clear() { entries_.clear(); }
  size_t size() const { return entries_.size(); }

  // Exposed read-only to the owning libOS (Xok exposes kernel data structures).
  const std::map<VPage, Pte>& entries() const { return entries_; }

 private:
  std::map<VPage, Pte> entries_;
};

}  // namespace exo::xok

#endif  // EXO_XOK_PAGE_TABLE_H_
