#include "trace/trace.h"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <cstring>

namespace exo::trace {

namespace {

constexpr const char* kCategoryNames[kNumCategories] = {
    "sched", "syscall", "disk", "net", "xn", "fs", "app", "fault"};

// Records in (time, seq) order. Emission order is already seq order, but spans
// emitted retrospectively (e.g. disk service phases stamped at dispatch time)
// may carry future timestamps, so exporters re-sort.
std::vector<Record> SortedRecords(const Tracer& tracer) {
  std::vector<Record> recs = tracer.Records();
  std::stable_sort(recs.begin(), recs.end(), [](const Record& a, const Record& b) {
    return a.time != b.time ? a.time < b.time : a.seq < b.seq;
  });
  return recs;
}

void AppendF(std::string& out, const char* fmt, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, fmt);
  int n = std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  if (n > 0) {
    out.append(buf, std::min<size_t>(static_cast<size_t>(n), sizeof(buf) - 1));
  }
}

void AppendJsonString(std::string& out, const char* s) {
  out.push_back('"');
  for (; *s != '\0'; ++s) {
    const unsigned char c = static_cast<unsigned char>(*s);
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(static_cast<char>(c));
    } else if (c < 0x20) {
      AppendF(out, "\\u%04x", c);
    } else {
      out.push_back(static_cast<char>(c));
    }
  }
  out.push_back('"');
}

const char* KindLetter(Kind k) {
  switch (k) {
    case Kind::kBegin:
      return "B";
    case Kind::kEnd:
      return "E";
    case Kind::kInstant:
      return "I";
    case Kind::kCounter:
      return "C";
  }
  return "?";
}

}  // namespace

const char* CategoryName(Category c) {
  const unsigned i = static_cast<unsigned>(c);
  return i < kNumCategories ? kCategoryNames[i] : "?";
}

bool ParseCategoryMask(const std::string& list, uint32_t* mask) {
  if (list == "all" || list.empty()) {
    *mask = kAllCategories;
    return true;
  }
  uint32_t m = 0;
  size_t pos = 0;
  while (pos <= list.size()) {
    size_t comma = list.find(',', pos);
    if (comma == std::string::npos) {
      comma = list.size();
    }
    const std::string item = list.substr(pos, comma - pos);
    bool found = false;
    for (int i = 0; i < kNumCategories; ++i) {
      if (item == kCategoryNames[i]) {
        m |= Bit(static_cast<Category>(i));
        found = true;
        break;
      }
    }
    if (!found) {
      return false;
    }
    pos = comma + 1;
    if (comma == list.size()) {
      break;
    }
  }
  *mask = m;
  return true;
}

std::vector<Record> Tracer::Records() const {
  std::vector<Record> out;
  if (ring_.empty() || seq_ == 0) {
    return out;
  }
  const uint64_t n = std::min<uint64_t>(seq_, ring_.size());
  out.reserve(static_cast<size_t>(n));
  for (uint64_t i = seq_ - n; i < seq_; ++i) {
    out.push_back(ring_[static_cast<size_t>(i % ring_.size())]);
  }
  return out;
}

std::string TextDump(const Tracer& tracer, uint32_t cpu_mhz) {
  std::string out;
  AppendF(out, "# exo::trace dump: %" PRIu64 " records (%" PRIu64
               " dropped), cpu_mhz=%u\n",
          tracer.emitted(), tracer.dropped(), cpu_mhz);
  const auto& tracks = tracer.track_names();
  for (const Record& r : SortedRecords(tracer)) {
    const char* track = r.track < tracks.size() ? tracks[r.track].c_str() : "?";
    AppendF(out, "[%" PRIu64 "] %s %s %s %s arg=%" PRIu64 "\n", r.time, track,
            CategoryName(r.category), KindLetter(r.kind),
            r.name != nullptr ? r.name : "?", r.arg);
  }
  if (!tracer.histograms().empty()) {
    out += "# histograms\n";
    for (const auto& [name, h] : tracer.histograms()) {
      AppendF(out,
              "%s count=%" PRIu64 " min=%" PRIu64 " mean=%.1f p50=%" PRIu64
              " p90=%" PRIu64 " p99=%" PRIu64 " max=%" PRIu64 "\n",
              name.c_str(), h->count(), h->min(), h->mean(), h->Percentile(50),
              h->Percentile(90), h->Percentile(99), h->max());
    }
  }
  return out;
}

std::string MergedTextDump(const std::vector<const Tracer*>& tracers,
                           uint32_t cpu_mhz) {
  struct Tagged {
    Record rec;
    size_t tracer = 0;
  };
  std::vector<Tagged> all;
  uint64_t emitted = 0;
  uint64_t dropped = 0;
  for (size_t i = 0; i < tracers.size(); ++i) {
    emitted += tracers[i]->emitted();
    dropped += tracers[i]->dropped();
    for (const Record& r : tracers[i]->Records()) {
      all.push_back(Tagged{r, i});
    }
  }
  std::stable_sort(all.begin(), all.end(), [](const Tagged& a, const Tagged& b) {
    if (a.rec.time != b.rec.time) {
      return a.rec.time < b.rec.time;
    }
    if (a.tracer != b.tracer) {
      return a.tracer < b.tracer;
    }
    return a.rec.seq < b.rec.seq;
  });

  std::string out;
  AppendF(out, "# exo::trace merged dump: %zu tracers, %" PRIu64 " records (%" PRIu64
               " dropped), cpu_mhz=%u\n",
          tracers.size(), emitted, dropped, cpu_mhz);
  for (const Tagged& t : all) {
    const auto& tracks = tracers[t.tracer]->track_names();
    const Record& r = t.rec;
    const char* track = r.track < tracks.size() ? tracks[r.track].c_str() : "?";
    AppendF(out, "[%" PRIu64 "] %s %s %s %s arg=%" PRIu64 "\n", r.time, track,
            CategoryName(r.category), KindLetter(r.kind),
            r.name != nullptr ? r.name : "?", r.arg);
  }
  bool any_hist = false;
  for (const Tracer* t : tracers) {
    any_hist |= !t->histograms().empty();
  }
  if (any_hist) {
    out += "# histograms\n";
    for (const Tracer* t : tracers) {
      for (const auto& [name, h] : t->histograms()) {
        AppendF(out,
                "%s count=%" PRIu64 " min=%" PRIu64 " mean=%.1f p50=%" PRIu64
                " p90=%" PRIu64 " p99=%" PRIu64 " max=%" PRIu64 "\n",
                name.c_str(), h->count(), h->min(), h->mean(), h->Percentile(50),
                h->Percentile(90), h->Percentile(99), h->max());
      }
    }
  }
  return out;
}

std::string HistogramSummary(const Tracer& tracer) {
  std::string out;
  for (const auto& [name, h] : tracer.histograms()) {
    if (h->count() == 0) {
      continue;
    }
    AppendF(out,
            "%-32s count=%-8" PRIu64 " min=%-8" PRIu64 " mean=%-10.1f p50=%-8" PRIu64
            " p90=%-8" PRIu64 " p99=%-8" PRIu64 " max=%" PRIu64 "\n",
            name.c_str(), h->count(), h->min(), h->mean(), h->Percentile(50),
            h->Percentile(90), h->Percentile(99), h->max());
  }
  return out;
}

std::string PerfettoJson(const Tracer& tracer, uint32_t cpu_mhz) {
  const std::vector<Record> recs = SortedRecords(tracer);
  const auto& tracks = tracer.track_names();
  const double us_per_cycle = 1.0 / static_cast<double>(cpu_mhz);

  std::string out;
  out.reserve(recs.size() * 96 + 4096);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto sep = [&out, &first] {
    if (!first) {
      out.push_back(',');
    }
    first = false;
    out.push_back('\n');
  };

  // Metadata: one process for the whole simulation, one named thread per track.
  sep();
  out += "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\","
         "\"args\":{\"name\":\"exo-sim\"}}";
  for (size_t t = 0; t < tracks.size(); ++t) {
    sep();
    AppendF(out, "{\"ph\":\"M\",\"pid\":1,\"tid\":%zu,\"name\":\"thread_name\",\"args\":{\"name\":",
            t);
    AppendJsonString(out, tracks[t].c_str());
    out += "}}";
  }

  // Re-balance spans per track so the JSON always nests: an End with no open
  // Begin (its partner fell off the ring) is dropped; Begins still open at the
  // end of the stream are closed at the final timestamp.
  std::map<uint32_t, std::vector<const Record*>> open;
  Cycles last_time = 0;

  auto emit = [&](const char* ph, const Record& r, Cycles time) {
    sep();
    AppendF(out, "{\"ph\":\"%s\",\"pid\":1,\"tid\":%u,\"ts\":%.3f,\"cat\":\"%s\",\"name\":",
            ph, r.track, static_cast<double>(time) * us_per_cycle,
            CategoryName(r.category));
    AppendJsonString(out, r.name != nullptr ? r.name : "?");
    if (r.kind == Kind::kInstant) {
      out += ",\"s\":\"t\"";
    }
    if (r.kind == Kind::kCounter) {
      AppendF(out, ",\"args\":{\"value\":%" PRIu64 "}", r.arg);
    } else {
      AppendF(out, ",\"args\":{\"arg\":%" PRIu64 "}", r.arg);
    }
    out += "}";
  };

  for (const Record& r : recs) {
    last_time = std::max(last_time, r.time);
    switch (r.kind) {
      case Kind::kBegin:
        open[r.track].push_back(&r);
        emit("B", r, r.time);
        break;
      case Kind::kEnd: {
        auto it = open.find(r.track);
        if (it == open.end() || it->second.empty()) {
          break;  // orphan end: its begin was overwritten by ring wraparound
        }
        it->second.pop_back();
        emit("E", r, r.time);
        break;
      }
      case Kind::kInstant:
        emit("i", r, r.time);
        break;
      case Kind::kCounter: {
        sep();
        AppendF(out, "{\"ph\":\"C\",\"pid\":1,\"tid\":%u,\"ts\":%.3f,\"name\":", r.track,
                static_cast<double>(r.time) * us_per_cycle);
        AppendJsonString(out, r.name != nullptr ? r.name : "?");
        AppendF(out, ",\"args\":{\"value\":%" PRIu64 "}}", r.arg);
        break;
      }
    }
  }
  for (auto& [track, stack] : open) {
    while (!stack.empty()) {
      const Record* b = stack.back();
      stack.pop_back();
      Record closer = *b;
      closer.kind = Kind::kEnd;
      emit("E", closer, last_time);
    }
  }

  out += "\n]}\n";
  return out;
}

}  // namespace exo::trace
