// exo::trace — deterministic, allocation-light tracing and metrics.
//
// Every layer of the simulator (engine, scheduler, syscall surface, disk, wire,
// TCP, XN, C-FFS, HTTP) owns instrumentation points that emit fixed-size records
// into one shared ring. Records are stamped with the *simulated* clock: tracing
// reads time, it never advances it, so simulated behavior is bit-identical with
// tracing on or off. The gem5 probe/stats split is the template — layers own the
// points, the run chooses the consumers.
//
// Hot-path contract:
//   - Disabled: the whole subsystem is one predicted branch per site
//     (`tracer->enabled(cat)` tests a bit in a cached mask; unattached components
//     test a null pointer first). Nothing is stored, nothing allocates.
//   - Enabled: emission writes one 40-byte POD record into a preallocated ring
//     (the oldest records are overwritten once full) — still no allocation.
//
// Attribution: every record carries a track id. Track 0 exists from birth
// ("main"); components register their own tracks (one per env, machine, device)
// with NewTrack() at construction/boot, which is off the hot path. Exporters
// render one Perfetto thread per track.
//
// This header is dependency-free on purpose: sim/ components (Engine,
// FaultInjector) hold Tracer pointers, so trace/ cannot link against sim/.
// Callers pass the current cycle count explicitly.
#ifndef EXO_TRACE_TRACE_H_
#define EXO_TRACE_TRACE_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "trace/histogram.h"

namespace exo::trace {

using Cycles = uint64_t;

// Per-category enables; a record belongs to exactly one category.
enum class Category : uint8_t {
  kSched = 0,  // engine event dispatch, scheduler decisions, CPU occupancy
  kSyscall,    // XokKernel syscall spans (env + Status), libOS call counts
  kDisk,       // request lifecycle: submit, merge, dispatch, seek/rotate/transfer
  kNet,        // NIC/link wire occupancy, TCP segment tx/rx/retransmit
  kXn,         // XN ops, stable-storage writes, recovery
  kFs,         // C-FFS block lookups and metadata reads
  kApp,        // application-level work (HTTP requests, workload steps)
  kFault,      // injected faults (disk errors, power cuts, wire damage)
};

inline constexpr int kNumCategories = 8;
inline constexpr uint32_t Bit(Category c) { return 1u << static_cast<unsigned>(c); }
inline constexpr uint32_t kAllCategories = (1u << kNumCategories) - 1;

const char* CategoryName(Category c);
// Parses a comma-separated category list ("disk,net,fault"; "all" for every
// category) into a mask. Returns false on an unknown name, leaving *mask alone.
bool ParseCategoryMask(const std::string& list, uint32_t* mask);

enum class Kind : uint8_t {
  kBegin,    // span open on the record's track
  kEnd,      // span close (most recent open span on the track)
  kInstant,  // point event
  kCounter,  // sampled counter value in `arg`
};

struct Record {
  Cycles time = 0;    // simulated cycles
  uint64_t seq = 0;   // global emission order
  const char* name = nullptr;  // static string literal owned by the caller
  uint64_t arg = 0;   // numeric payload (Status, bytes, block, env id, ...)
  uint32_t track = 0;
  Category category = Category::kSched;
  Kind kind = Kind::kInstant;
};

class Tracer {
 public:
  static constexpr size_t kDefaultCapacity = size_t{1} << 18;  // ~10 MB of records

  Tracer() { track_names_.push_back("main"); }
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  // Arms the given categories and (re)sizes the ring. Existing records survive a
  // same-capacity re-enable; changing capacity restarts the ring.
  void Enable(uint32_t mask = kAllCategories, size_t capacity = kDefaultCapacity) {
    mask_ = mask & kAllCategories;
    if (ring_.size() != capacity) {
      ring_.assign(capacity, Record{});
      seq_ = 0;
    }
  }
  // Drops the master switch; records and histograms stay readable.
  void Disable() { mask_ = 0; }

  bool active() const { return mask_ != 0; }
  bool enabled(Category c) const { return (mask_ & Bit(c)) != 0; }
  uint32_t mask() const { return mask_; }

  // Registers an attribution track (cold path: construction/boot only).
  uint32_t NewTrack(std::string name) {
    track_names_.push_back(name_prefix_.empty() ? std::move(name)
                                                : name_prefix_ + name);
    return static_cast<uint32_t>(track_names_.size() - 1);
  }
  const std::vector<std::string>& track_names() const { return track_names_; }

  // Prefixes every track and histogram name with `prefix` ("m3." in a
  // cluster), so merged multi-machine exports attribute unambiguously.
  // Existing tracks and histograms are renamed in place (record track ids and
  // cached histogram pointers stay valid); future NewTrack()/Histogram() names
  // gain the prefix automatically. Apply at most once, before merging; the
  // default (empty) leaves single-machine names byte-identical.
  void SetNamePrefix(const std::string& prefix) {
    if (prefix == name_prefix_) {
      return;
    }
    for (std::string& name : track_names_) {
      name = prefix + name.substr(name_prefix_.size());
    }
    std::map<std::string, std::unique_ptr<LatencyHistogram>> renamed;
    for (auto& [name, h] : histograms_) {
      renamed.emplace(prefix + name.substr(name_prefix_.size()), std::move(h));
    }
    histograms_ = std::move(renamed);
    name_prefix_ = prefix;
  }
  const std::string& name_prefix() const { return name_prefix_; }

  // Emission. Callers must check enabled(category) first — these write
  // unconditionally (apart from an empty-ring guard).
  void Begin(Category c, uint32_t track, const char* name, Cycles now, uint64_t arg = 0) {
    Push(c, Kind::kBegin, track, name, now, arg);
  }
  void End(Category c, uint32_t track, const char* name, Cycles now, uint64_t arg = 0) {
    Push(c, Kind::kEnd, track, name, now, arg);
  }
  void Instant(Category c, uint32_t track, const char* name, Cycles now, uint64_t arg = 0) {
    Push(c, Kind::kInstant, track, name, now, arg);
  }
  void Counter(Category c, uint32_t track, const char* name, Cycles now, uint64_t value) {
    Push(c, Kind::kCounter, track, name, now, value);
  }

  // Named latency histogram, created at zero on first use. The pointer is
  // stable: hot paths cache it exactly like a Counters slot handle.
  LatencyHistogram* Histogram(const std::string& name) {
    const std::string key = name_prefix_.empty() ? name : name_prefix_ + name;
    auto it = histograms_.find(key);
    if (it == histograms_.end()) {
      it = histograms_.emplace(key, std::make_unique<LatencyHistogram>()).first;
    }
    return it->second.get();
  }
  const std::map<std::string, std::unique_ptr<LatencyHistogram>>& histograms() const {
    return histograms_;
  }

  // ---- Export access ----

  uint64_t emitted() const { return seq_; }
  size_t capacity() const { return ring_.size(); }
  // Records lost to ring wraparound (always the oldest ones).
  uint64_t dropped() const {
    if (ring_.empty()) {
      return seq_;
    }
    return seq_ > ring_.size() ? seq_ - ring_.size() : 0;
  }
  // Surviving records in emission (seq) order.
  std::vector<Record> Records() const;

 private:
  void Push(Category c, Kind k, uint32_t track, const char* name, Cycles now,
            uint64_t arg) {
    if (ring_.empty()) {
      return;  // armed with zero capacity: count nothing, store nothing
    }
    Record& r = ring_[static_cast<size_t>(seq_ % ring_.size())];
    r.time = now;
    r.seq = seq_++;
    r.name = name;
    r.arg = arg;
    r.track = track;
    r.category = c;
    r.kind = k;
  }

  uint32_t mask_ = 0;
  uint64_t seq_ = 0;
  std::vector<Record> ring_;
  std::vector<std::string> track_names_;
  std::map<std::string, std::unique_ptr<LatencyHistogram>> histograms_;
  std::string name_prefix_;
};

// ---- Exporters ----

// Compact deterministic text dump (tests diff this byte-for-byte): one line per
// record in (time, seq) order, then a histogram summary block.
std::string TextDump(const Tracer& tracer, uint32_t cpu_mhz = 200);

// Deterministic merge of several machines' tracers into one text dump: records
// interleave in (time, tracer index, seq) order, histogram blocks concatenate
// in tracer order. Give each tracer a distinct SetNamePrefix ("m0.", "m1.",
// ...) so merged track and histogram names stay unambiguous. The cluster
// determinism tests diff this byte-for-byte across thread counts.
std::string MergedTextDump(const std::vector<const Tracer*>& tracers,
                           uint32_t cpu_mhz = 200);

// Chrome trace_event JSON loadable by ui.perfetto.dev / chrome://tracing.
// One thread per track; span begins/ends are rebalanced per track (orphan ends
// from ring wraparound are dropped, spans still open at the end are closed) so
// the output always nests correctly. Timestamps are microseconds.
std::string PerfettoJson(const Tracer& tracer, uint32_t cpu_mhz = 200);

// Formats the histogram registry ("name: count min mean p50 p90 p99 max"), one
// per line — benches print this to stderr so stdout stays bit-identical.
std::string HistogramSummary(const Tracer& tracer);

}  // namespace exo::trace

#endif  // EXO_TRACE_TRACE_H_
