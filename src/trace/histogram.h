// LatencyHistogram: log-bucketed distribution of simulated-cycle latencies.
//
// The paper reports distributions, not just totals (disk service times, HTTP
// request latencies); this is the accumulator benches read p50/p90/p99 from.
// Buckets are log2 octaves split into 16 linear sub-buckets (HdrHistogram-style):
// values below 16 are exact, larger values land in a bucket whose width is at
// most 1/16 of the value, so extracted percentiles carry a bounded <=6.25%
// relative error. Recording is a handful of integer ops and never allocates.
#ifndef EXO_TRACE_HISTOGRAM_H_
#define EXO_TRACE_HISTOGRAM_H_

#include <algorithm>
#include <array>
#include <bit>
#include <cstdint>

namespace exo::trace {

class LatencyHistogram {
 public:
  static constexpr uint32_t kSubBits = 4;
  static constexpr uint32_t kSub = 1u << kSubBits;  // linear sub-buckets per octave
  // Highest index is Index(UINT64_MAX) = (63 - kSubBits + 1) * kSub + (kSub - 1).
  static constexpr uint32_t kBuckets = (64 - kSubBits + 1) * kSub;

  void Record(uint64_t v) {
    ++buckets_[Index(v)];
    ++count_;
    sum_ += v;
    if (count_ == 1 || v < min_) {
      min_ = v;
    }
    if (v > max_) {
      max_ = v;
    }
  }

  uint64_t count() const { return count_; }
  uint64_t sum() const { return sum_; }
  uint64_t min() const { return count_ == 0 ? 0 : min_; }
  uint64_t max() const { return max_; }
  double mean() const {
    return count_ == 0 ? 0.0 : static_cast<double>(sum_) / static_cast<double>(count_);
  }

  // Value at percentile p (0 < p <= 100): the upper bound of the bucket holding
  // the sample of rank ceil(p/100 * count), clamped to [min, max]. Exact for
  // values < 16; within one sub-bucket otherwise.
  uint64_t Percentile(double p) const {
    if (count_ == 0) {
      return 0;
    }
    const double want = p / 100.0 * static_cast<double>(count_);
    uint64_t rank = static_cast<uint64_t>(want);
    if (static_cast<double>(rank) < want) {
      ++rank;
    }
    rank = std::max<uint64_t>(1, std::min(rank, count_));
    uint64_t cum = 0;
    for (uint32_t i = 0; i < kBuckets; ++i) {
      cum += buckets_[i];
      if (cum >= rank) {
        return std::clamp(BucketUpperBound(i), min_, max_);
      }
    }
    return max_;
  }

  // Adds another histogram's samples into this one, bucket-wise (merging
  // per-client distributions into a fleet-wide one loses no more precision
  // than recording into a single histogram would have).
  void Merge(const LatencyHistogram& other) {
    if (other.count_ == 0) {
      return;
    }
    for (uint32_t i = 0; i < kBuckets; ++i) {
      buckets_[i] += other.buckets_[i];
    }
    if (count_ == 0 || other.min_ < min_) {
      min_ = other.min_;
    }
    max_ = std::max(max_, other.max_);
    count_ += other.count_;
    sum_ += other.sum_;
  }

  void Reset() { *this = LatencyHistogram{}; }

  // Bucket index for value v (monotone non-decreasing in v).
  static uint32_t Index(uint64_t v) {
    if (v < kSub) {
      return static_cast<uint32_t>(v);
    }
    const int msb = 63 - std::countl_zero(v);
    const uint32_t sub =
        static_cast<uint32_t>((v >> (msb - static_cast<int>(kSubBits))) & (kSub - 1));
    return static_cast<uint32_t>(msb - static_cast<int>(kSubBits) + 1) * kSub + sub;
  }

  // Largest value mapping to bucket `index`.
  static uint64_t BucketUpperBound(uint32_t index) {
    if (index < kSub) {
      return index;
    }
    const int msb = static_cast<int>(index / kSub) + static_cast<int>(kSubBits) - 1;
    const uint64_t sub = index % kSub;
    return ((kSub + sub + 1) << (msb - static_cast<int>(kSubBits))) - 1;
  }

 private:
  std::array<uint64_t, kBuckets> buckets_{};
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t min_ = 0;
  uint64_t max_ = 0;
};

}  // namespace exo::trace

#endif  // EXO_TRACE_HISTOGRAM_H_
