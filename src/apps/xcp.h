// XCP: the "zero-touch" file copier (Sec. 7.2).
//
// XCP exploits the exokernel's low-level disk interface:
//   1. it enumerates and sorts the disk blocks of all source files and issues large
//      asynchronous reads in one schedule (the disk driver merges concurrent
//      schedules);
//   2. it creates the destination files at their full size, overlapping inode and
//      block allocation with the reads;
//   3. as reads complete it constructs large writes *reusing the very same cache
//      frames* — the data is DMAed into and out of the buffer cache by the disk
//      controller and the CPU never touches it.
//
// Only the exokernel configuration can run XCP: it needs FileBlocks/CreateSized and
// direct XN registry access, which the kernel-resident file systems do not expose.
#ifndef EXO_APPS_XCP_H_
#define EXO_APPS_XCP_H_

#include <string>
#include <vector>

#include "exos/system.h"

namespace exo::apps {

struct XcpStats {
  uint64_t blocks_copied = 0;
  uint64_t read_requests = 0;
};

// Copies each srcs[i] to dstdir/<leaf>. Must run inside a process on an
// exokernel-flavor System.
// With wait_for_writes=false (the default), XCP submits its large write schedule
// and returns; an unprivileged daemon may flush unowned dirty blocks (Sec. 4.3.3),
// so the program need not wait. Pass true to measure full on-disk completion.
Result<XcpStats> Xcp(os::System& sys, os::UnixEnv& env, const std::vector<std::string>& srcs,
                     const std::string& dstdir, bool wait_for_writes = false);

}  // namespace exo::apps

#endif  // EXO_APPS_XCP_H_
