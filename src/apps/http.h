// HTTP/1.0 servers and load generator for the Figure 3 experiment (Sec. 7.3).
//
// Five server configurations, matching the figure:
//   kNcsaBsd    — NCSA 1.4.2 style: a process is forked per request; BSD sockets.
//   kHarvestBsd — Harvest-cache style: single process, in-memory document cache,
//                 BSD sockets (the best conventional server the paper measured).
//   kSocketBsd  — the paper's own server over plain BSD sockets.
//   kSocketXok  — the same server over ExOS sockets layered on XIO (PCB reuse and
//                 packet merging on, but payloads still copied and checksummed).
//   kCheetah    — all Cheetah optimizations: transmit directly from the file cache
//                 with precomputed checksums (merged retransmission pool) and
//                 knowledge-based ACK piggybacking.
//
// Documents live in a warm file cache (the paper measures cached documents; disk
// placement is exercised separately). Per-request file-system work is charged per
// style: NCSA pays a fork, Socket servers pay open/stat/read syscalls and a
// file-cache-to-user copy, Cheetah uses its cached file pointers.
#ifndef EXO_APPS_HTTP_H_
#define EXO_APPS_HTTP_H_

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "net/tcp.h"
#include "net/xio.h"
#include "sim/cpu_meter.h"
#include "sim/rng.h"
#include "trace/histogram.h"

namespace exo::apps {

enum class ServerStyle { kNcsaBsd, kHarvestBsd, kSocketBsd, kSocketXok, kCheetah };

const char* ServerStyleName(ServerStyle s);

// Fleet-scale serving options. Default-constructed = the historical HTTP/1.0
// close-per-request server, byte-identical to pre-options behavior; every field
// is an independent opt-in so figs and benches arm exactly what they measure.
struct HttpServerOptions {
  // Keep connections open and answer pipelined requests in arrival order
  // (responses carry HTTP/1.1). Off: one request per connection, server closes.
  bool persistent = false;
  // Shared libFS document store: bodies are served from its pinned bytes with
  // its stored per-MSS checksums (computed at file-write time, not lazily per
  // server). nullptr: per-server docs_ + lazy ChecksumCache as before.
  net::DocumentStore* documents = nullptr;
  // LRU response cache capacity (prepared header + checksum + body pointer),
  // shared across requests. 0 = no cache.
  size_t response_cache_entries = 0;
  // Cheetah only: transmit header+body in one gather segment when they fit one
  // MSS, with the combined checksum stapled from the stored body checksum.
  bool gather_tx = false;
};

class HttpServer {
 public:
  HttpServer(sim::Engine* engine, const sim::CostModel* cost, ServerStyle style,
             net::IpAddr ip, const HttpServerOptions& options = {});

  // Attaches a NIC; frames to `peer_ip` leave through it (one client per link).
  void AttachNic(hw::Nic* nic, net::IpAddr peer_ip);

  // Registers a document (contents stay stable: they are the file cache).
  void AddDocument(const std::string& name, std::vector<uint8_t> content);

  // Installs the overload policy. Must precede Listen (the listen backlog is
  // fixed at listen time). Default-constructed policy = historic behavior.
  void SetOverloadPolicy(const net::ServerOverloadPolicy& policy);

  Status Listen(net::Port port = 80);

  uint64_t requests_served() const { return requests_; }
  // Requests answered with a cheap 503 while shedding (admission control).
  uint64_t requests_rejected() const { return rejected_; }
  // Admitted requests aborted because they blew the response deadline.
  uint64_t deadline_aborts() const { return deadline_aborts_; }
  bool shedding() const { return shedding_; }
  // Response-cache counters (0s when no cache is configured).
  uint64_t cache_hits() const { return cache_ != nullptr ? cache_->hits() : 0; }
  uint64_t cache_misses() const { return cache_ != nullptr ? cache_->misses() : 0; }
  uint64_t cache_evictions() const { return cache_ != nullptr ? cache_->evictions() : 0; }
  uint64_t gather_sends() const { return gather_sends_; }
  sim::CpuMeter& cpu() { return cpu_; }
  net::TcpStack& stack() { return *stack_; }

  // Attaches a tracer: requests become `app` spans with nested syscall/fs
  // sub-spans, the CPU meter gets its own busy track, and the TCP stack emits
  // segment instants. Call before serving traffic.
  void SetTracer(trace::Tracer* tracer);

  // Machine-death teardown: cancels every deadline timer, drops partially
  // parsed requests, and shuts the TCP stack down (no FINs, no callbacks —
  // see TcpStack::Shutdown). The object stays valid as a zombie so engine
  // events already scheduled against it no-op; a rebooted machine builds a
  // fresh HttpServer instead of reviving this one.
  void Shutdown();

 private:
  struct DeadlineEntry {
    uint64_t epoch = 0;
    sim::Engine::EventId timer = 0;
  };

  void OnRequest(net::TcpConn* conn, std::span<const uint8_t> data);
  void ServeOne(net::TcpConn* conn, const std::string& request);
  sim::Cycles PerRequestOsCost(size_t doc_size) const;
  void ArmDeadline(net::TcpConn* conn);
  void DisarmDeadline(net::TcpConn* conn);
  // Close, or keep open when the server is persistent AND the request spoke
  // HTTP/1.1 (a 1.0 client on an armed server still learns end-of-body from
  // the close, so mixed tenants can share one server).
  void FinishResponse(net::TcpConn* conn, bool keep_alive);
  // Transmits a prepared (header, store-backed body) response: one gather
  // segment with a stapled checksum when configured and it fits, else header
  // and zero-copy body as separate sends.
  void SendPrepared(net::TcpConn* conn, const net::HttpResponseCache::Entry& e);

  sim::Engine* engine_;
  const sim::CostModel* cost_;
  ServerStyle style_;
  sim::CpuMeter cpu_;
  trace::Tracer* tracer_ = nullptr;
  uint32_t trace_track_ = 0;
  std::unique_ptr<net::TcpStack> stack_;
  std::map<net::IpAddr, hw::Nic*> routes_;
  HttpServerOptions options_;
  std::unique_ptr<net::HttpResponseCache> cache_;
  uint64_t gather_sends_ = 0;
  std::map<std::string, std::vector<uint8_t>> docs_;
  net::ChecksumCache checksums_;
  std::map<std::string, uint64_t> doc_ids_;
  uint64_t next_doc_id_ = 1;
  uint64_t requests_ = 0;
  std::map<net::TcpConn*, std::string> partial_;  // request bytes per connection
  net::ServerOverloadPolicy policy_;
  bool shedding_ = false;
  uint64_t rejected_ = 0;
  uint64_t deadline_aborts_ = 0;
  uint64_t deadline_epoch_ = 0;
  // Keyed by PCB pointer; the epoch disambiguates a reused PCB from the
  // connection whose deadline was armed (stale timers check it and stand down).
  std::map<net::TcpConn*, DeadlineEntry> deadlines_;
};

// A load generator: `concurrency` closed-loop clients fetching `doc` over new
// connections (HTTP/1.0) until the deadline. Client CPU is free — the experiment
// isolates the server (Sec. 7.3 methodology).
class HttpClient {
 public:
  HttpClient(sim::Engine* engine, const sim::CostModel* cost, hw::Nic* nic, net::IpAddr ip,
             net::IpAddr server_ip, std::string doc, int concurrency);

  void Start(sim::Cycles deadline);
  uint64_t completed() const { return completed_; }
  uint64_t bytes_received() const { return bytes_; }
  net::TcpStack& stack() { return *stack_; }

  // Client-side request deadline: a request outstanding longer than this is
  // aborted (RST) and its loop slot reissued. Covers the case where the
  // server's own abort RST is lost on the wire — without it the client would
  // wait forever in kEstablished with no timer armed. 0 (default) disables;
  // the disabled path schedules nothing, keeping fig3 runs event-for-event
  // identical.
  void set_request_timeout(sim::Cycles cycles) { request_timeout_ = cycles; }

  // Connection-death retry backoff: after an aborted fetch the loop slot waits
  // min(cap, base << consecutive_aborts) plus seeded jitter before reissuing,
  // instead of hammering a dead server at RTT rate; any successful fetch
  // resets the streak. 0 base (default) keeps the historical immediate-retry
  // behavior, event-for-event.
  void set_retry_backoff(sim::Cycles base, sim::Cycles cap, uint64_t seed) {
    retry_base_ = base;
    retry_cap_ = cap;
    retry_rng_ = sim::Rng(seed);
  }

  // Attaches a tracer under track `name`; completed requests feed the
  // "http.request_latency_cycles" histogram (connect to close).
  void SetTracer(trace::Tracer* tracer, const std::string& name);

 private:
  void StartOne();

  sim::Engine* engine_;
  hw::Nic* nic_;
  net::IpAddr server_ip_;
  std::string doc_;
  int concurrency_;
  sim::Cycles deadline_ = 0;
  std::unique_ptr<net::TcpStack> stack_;
  uint64_t completed_ = 0;
  uint64_t bytes_ = 0;
  trace::Tracer* tracer_ = nullptr;
  trace::LatencyHistogram* latency_hist_ = nullptr;
  sim::Cycles request_timeout_ = 0;
  uint64_t timeout_epoch_ = 0;
  sim::Cycles retry_base_ = 0;
  sim::Cycles retry_cap_ = 0;
  uint64_t consec_aborts_ = 0;
  sim::Rng retry_rng_{1};
  // Outstanding requests by PCB pointer; the epoch disambiguates a reused PCB
  // from the request whose timeout was armed (stale timers stand down).
  std::map<net::TcpConn*, uint64_t> inflight_;
};

// An open-loop load generator: connection attempts arrive on a fixed schedule
// regardless of how the previous ones fared — the arrival process does not slow
// down when the server does, which is what makes overload visible (a closed
// loop self-throttles and can never offer more than concurrency × 1/RTT).
// Each request is classified from the response status line: 200 with a
// complete body counts as goodput, 503 as shed, and an aborted/reset/short
// connection as failed. Successful-request latency lands in latency() —
// a standalone histogram, recorded regardless of tracing.
class OpenLoopHttpClient {
 public:
  // `profile` defaults to the cost-free load-generator stack; soak tests pass a
  // checksum-verifying profile so corrupted responses are detected and retried.
  OpenLoopHttpClient(sim::Engine* engine, const sim::CostModel* cost, hw::Nic* nic,
                     net::IpAddr ip, net::IpAddr server_ip, std::string doc,
                     sim::Cycles interval_cycles,
                     net::TcpProfile profile = net::ClientProfile());

  // Issues requests every interval until `deadline`.
  void Start(sim::Cycles deadline);

  uint64_t issued() const { return issued_; }
  uint64_t completed() const { return completed_; }
  uint64_t rejected() const { return rejected_; }
  uint64_t failed() const { return failed_; }
  uint64_t bytes_received() const { return bytes_; }
  // Connections this client opened (handshakes): one per request in the
  // historical mode, at most the pool size (plus reconnects) when persistent.
  uint64_t conns_opened() const { return conns_opened_; }
  const trace::LatencyHistogram& latency() const { return latency_; }
  net::TcpStack& stack() { return *stack_; }

  // Same semantics as HttpClient::set_request_timeout: abort (and count as
  // failed) a request still unresolved after this long. 0 (default) disables.
  void set_request_timeout(sim::Cycles cycles) { request_timeout_ = cycles; }

  // Persistent-connection mode: requests ride a fixed pool of keep-alive
  // connections (HTTP/1.1), pipelined up to `max_pipeline` deep per connection,
  // instead of a fresh handshake per request. A request that finds its
  // connection's pipeline full counts as failed (client-side shed — the
  // open-loop equivalent of a connect timeout). Call before Start(); off by
  // default, leaving the historical one-connection-per-request behavior.
  void EnablePersistent(size_t pool_size, size_t max_pipeline = 8);
  // Closes every pool connection (client-side FIN). Requests still in flight
  // fail through the normal on_close accounting. For drain checks: a pool
  // otherwise keeps its keep-alive connections established forever.
  void ClosePool();
  // Chooses the document for each request (Zipf sweeps); default: the
  // constructor's single doc.
  void set_doc_picker(std::function<std::string()> f) { doc_picker_ = std::move(f); }

  // Reconnect backoff for persistent pools: after a pool connection dies
  // aborted, the slot refuses to redial for min(cap, base << consecutive
  // failures) plus seeded jitter; arrivals landing on a backing-off slot
  // count as failed immediately (the open loop never waits). A successfully
  // completed response resets the slot's streak. 0 base (default) keeps the
  // historical redial-on-next-arrival behavior.
  void set_reconnect_backoff(sim::Cycles base, sim::Cycles cap, uint64_t seed) {
    reconnect_base_ = base;
    reconnect_cap_ = cap;
    reconnect_rng_ = sim::Rng(seed);
  }

 private:
  struct Pending {
    std::string data;    // response bytes captured so far
    uint64_t epoch = 0;  // guards timeout timers against PCB reuse
  };
  struct PoolSlot {
    net::TcpConn* conn = nullptr;
    bool established = false;
    std::string rx;                  // response bytes not yet parsed
    std::deque<sim::Cycles> starts;  // issue time per outstanding request, in order
    std::deque<std::string> queued;  // requests issued before the handshake finished
    sim::Cycles retry_at = 0;        // no redial before this time (backoff)
    uint32_t consec_fails = 0;       // aborted closes since the last success
  };

  void IssueOne();
  void IssuePersistent();
  void OpenPoolSlot(size_t slot);
  void DrainPoolResponses(size_t slot);
  void Tick();

  sim::Engine* engine_;
  hw::Nic* nic_;
  net::IpAddr server_ip_;
  std::string doc_;
  sim::Cycles interval_;
  sim::Cycles deadline_ = 0;
  std::unique_ptr<net::TcpStack> stack_;
  std::map<net::TcpConn*, Pending> responses_;
  bool persistent_ = false;
  size_t max_pipeline_ = 8;
  std::vector<PoolSlot> pool_;
  size_t pool_rr_ = 0;
  std::function<std::string()> doc_picker_;
  sim::Cycles request_timeout_ = 0;
  uint64_t timeout_epoch_ = 0;
  sim::Cycles reconnect_base_ = 0;
  sim::Cycles reconnect_cap_ = 0;
  sim::Rng reconnect_rng_{1};
  uint64_t issued_ = 0;
  uint64_t completed_ = 0;
  uint64_t rejected_ = 0;
  uint64_t failed_ = 0;
  uint64_t bytes_ = 0;
  uint64_t conns_opened_ = 0;
  trace::LatencyHistogram latency_;
};

}  // namespace exo::apps

#endif  // EXO_APPS_HTTP_H_
