// HTTP/1.0 servers and load generator for the Figure 3 experiment (Sec. 7.3).
//
// Five server configurations, matching the figure:
//   kNcsaBsd    — NCSA 1.4.2 style: a process is forked per request; BSD sockets.
//   kHarvestBsd — Harvest-cache style: single process, in-memory document cache,
//                 BSD sockets (the best conventional server the paper measured).
//   kSocketBsd  — the paper's own server over plain BSD sockets.
//   kSocketXok  — the same server over ExOS sockets layered on XIO (PCB reuse and
//                 packet merging on, but payloads still copied and checksummed).
//   kCheetah    — all Cheetah optimizations: transmit directly from the file cache
//                 with precomputed checksums (merged retransmission pool) and
//                 knowledge-based ACK piggybacking.
//
// Documents live in a warm file cache (the paper measures cached documents; disk
// placement is exercised separately). Per-request file-system work is charged per
// style: NCSA pays a fork, Socket servers pay open/stat/read syscalls and a
// file-cache-to-user copy, Cheetah uses its cached file pointers.
#ifndef EXO_APPS_HTTP_H_
#define EXO_APPS_HTTP_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "net/tcp.h"
#include "net/xio.h"
#include "sim/cpu_meter.h"

namespace exo::apps {

enum class ServerStyle { kNcsaBsd, kHarvestBsd, kSocketBsd, kSocketXok, kCheetah };

const char* ServerStyleName(ServerStyle s);

class HttpServer {
 public:
  HttpServer(sim::Engine* engine, const sim::CostModel* cost, ServerStyle style,
             net::IpAddr ip);

  // Attaches a NIC; frames to `peer_ip` leave through it (one client per link).
  void AttachNic(hw::Nic* nic, net::IpAddr peer_ip);

  // Registers a document (contents stay stable: they are the file cache).
  void AddDocument(const std::string& name, std::vector<uint8_t> content);

  Status Listen(net::Port port = 80);

  uint64_t requests_served() const { return requests_; }
  sim::CpuMeter& cpu() { return cpu_; }
  net::TcpStack& stack() { return *stack_; }

  // Attaches a tracer: requests become `app` spans with nested syscall/fs
  // sub-spans, the CPU meter gets its own busy track, and the TCP stack emits
  // segment instants. Call before serving traffic.
  void SetTracer(trace::Tracer* tracer);

 private:
  void OnRequest(net::TcpConn* conn, std::span<const uint8_t> data);
  sim::Cycles PerRequestOsCost(size_t doc_size) const;

  sim::Engine* engine_;
  const sim::CostModel* cost_;
  ServerStyle style_;
  sim::CpuMeter cpu_;
  trace::Tracer* tracer_ = nullptr;
  uint32_t trace_track_ = 0;
  std::unique_ptr<net::TcpStack> stack_;
  std::map<net::IpAddr, hw::Nic*> routes_;
  std::map<std::string, std::vector<uint8_t>> docs_;
  net::ChecksumCache checksums_;
  std::map<std::string, uint64_t> doc_ids_;
  uint64_t next_doc_id_ = 1;
  uint64_t requests_ = 0;
  std::map<net::TcpConn*, std::string> partial_;  // request bytes per connection
};

// A load generator: `concurrency` closed-loop clients fetching `doc` over new
// connections (HTTP/1.0) until the deadline. Client CPU is free — the experiment
// isolates the server (Sec. 7.3 methodology).
class HttpClient {
 public:
  HttpClient(sim::Engine* engine, const sim::CostModel* cost, hw::Nic* nic, net::IpAddr ip,
             net::IpAddr server_ip, std::string doc, int concurrency);

  void Start(sim::Cycles deadline);
  uint64_t completed() const { return completed_; }
  uint64_t bytes_received() const { return bytes_; }

  // Attaches a tracer under track `name`; completed requests feed the
  // "http.request_latency_cycles" histogram (connect to close).
  void SetTracer(trace::Tracer* tracer, const std::string& name);

 private:
  void StartOne();

  sim::Engine* engine_;
  hw::Nic* nic_;
  net::IpAddr server_ip_;
  std::string doc_;
  int concurrency_;
  sim::Cycles deadline_ = 0;
  std::unique_ptr<net::TcpStack> stack_;
  uint64_t completed_ = 0;
  uint64_t bytes_ = 0;
  trace::Tracer* tracer_ = nullptr;
  trace::LatencyHistogram* latency_hist_ = nullptr;
};

}  // namespace exo::apps

#endif  // EXO_APPS_HTTP_H_
