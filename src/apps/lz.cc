#include "apps/lz.h"

#include <cstring>
#include <unordered_map>

namespace exo::apps {

namespace {

constexpr uint32_t kWindow = 32768;
constexpr uint32_t kMinMatch = 4;
constexpr uint32_t kMaxMatch = 255;
constexpr uint8_t kBlockCompressed = 1;
constexpr uint8_t kBlockStored = 0;
constexpr uint32_t kBlockSize = 65536;

void PutU32(std::vector<uint8_t>& out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

uint32_t GetU32(std::span<const uint8_t> in, size_t off) {
  return static_cast<uint32_t>(in[off]) | (static_cast<uint32_t>(in[off + 1]) << 8) |
         (static_cast<uint32_t>(in[off + 2]) << 16) |
         (static_cast<uint32_t>(in[off + 3]) << 24);
}

// Compresses one block; returns the token stream (without header).
std::vector<uint8_t> CompressBlock(std::span<const uint8_t> in) {
  std::vector<uint8_t> out;
  out.reserve(in.size());
  // Hash chain over 4-byte prefixes.
  std::unordered_map<uint32_t, uint32_t> head;  // hash -> last position
  auto hash4 = [&](size_t i) {
    uint32_t v;
    std::memcpy(&v, in.data() + i, 4);
    return v * 2654435761u;
  };
  size_t i = 0;
  std::vector<uint8_t> literals;
  auto flush_literals = [&] {
    size_t off = 0;
    while (off < literals.size()) {
      size_t n = std::min<size_t>(literals.size() - off, 127);
      out.push_back(static_cast<uint8_t>(n));  // 1..127: literal run
      out.insert(out.end(), literals.begin() + static_cast<long>(off),
                 literals.begin() + static_cast<long>(off + n));
      off += n;
    }
    literals.clear();
  };
  while (i < in.size()) {
    uint32_t best_len = 0;
    uint32_t best_dist = 0;
    if (i + kMinMatch <= in.size()) {
      auto it = head.find(hash4(i));
      if (it != head.end()) {
        uint32_t cand = it->second;
        if (cand < i && i - cand <= kWindow) {
          uint32_t len = 0;
          uint32_t max = static_cast<uint32_t>(std::min<size_t>(in.size() - i, kMaxMatch));
          while (len < max && in[cand + len] == in[i + len]) {
            ++len;
          }
          if (len >= kMinMatch) {
            best_len = len;
            best_dist = static_cast<uint32_t>(i - cand);
          }
        }
      }
      head[hash4(i)] = static_cast<uint32_t>(i);
    }
    if (best_len >= kMinMatch) {
      flush_literals();
      out.push_back(0x80);  // match token
      out.push_back(static_cast<uint8_t>(best_len));
      out.push_back(static_cast<uint8_t>(best_dist));
      out.push_back(static_cast<uint8_t>(best_dist >> 8));
      for (uint32_t k = 1; k < best_len && i + k + kMinMatch <= in.size(); k += 3) {
        head[hash4(i + k)] = static_cast<uint32_t>(i + k);
      }
      i += best_len;
    } else {
      literals.push_back(in[i]);
      ++i;
    }
  }
  flush_literals();
  return out;
}

}  // namespace

std::vector<uint8_t> LzCompress(std::span<const uint8_t> input) {
  std::vector<uint8_t> out;
  out.reserve(input.size() / 2 + 64);
  PutU32(out, static_cast<uint32_t>(input.size()));
  for (size_t off = 0; off < input.size() || (input.empty() && off == 0); off += kBlockSize) {
    if (input.empty()) {
      break;
    }
    size_t n = std::min<size_t>(kBlockSize, input.size() - off);
    auto block = input.subspan(off, n);
    auto packed = CompressBlock(block);
    if (packed.size() < n) {
      out.push_back(kBlockCompressed);
      PutU32(out, static_cast<uint32_t>(packed.size()));
      PutU32(out, static_cast<uint32_t>(n));
      out.insert(out.end(), packed.begin(), packed.end());
    } else {
      out.push_back(kBlockStored);
      PutU32(out, static_cast<uint32_t>(n));
      PutU32(out, static_cast<uint32_t>(n));
      out.insert(out.end(), block.begin(), block.end());
    }
  }
  return out;
}

std::vector<uint8_t> LzDecompress(std::span<const uint8_t> input, bool* ok) {
  auto fail = [&] {
    if (ok != nullptr) {
      *ok = false;
    }
    return std::vector<uint8_t>{};
  };
  if (ok != nullptr) {
    *ok = true;
  }
  if (input.size() < 4) {
    return fail();
  }
  uint32_t total = GetU32(input, 0);
  std::vector<uint8_t> out;
  out.reserve(total);
  size_t pos = 4;
  while (out.size() < total) {
    if (pos + 9 > input.size()) {
      return fail();
    }
    uint8_t kind = input[pos];
    uint32_t packed_len = GetU32(input, pos + 1);
    uint32_t raw_len = GetU32(input, pos + 5);
    pos += 9;
    if (pos + packed_len > input.size()) {
      return fail();
    }
    if (kind == kBlockStored) {
      out.insert(out.end(), input.begin() + static_cast<long>(pos),
                 input.begin() + static_cast<long>(pos + packed_len));
      pos += packed_len;
      continue;
    }
    size_t end = pos + packed_len;
    size_t produced0 = out.size();
    while (pos < end) {
      uint8_t tok = input[pos];
      if (tok == 0x80) {
        if (pos + 4 > end) {
          return fail();
        }
        uint32_t len = input[pos + 1];
        uint32_t dist = input[pos + 2] | (input[pos + 3] << 8);
        pos += 4;
        if (dist == 0 || dist > out.size()) {
          return fail();
        }
        size_t start = out.size() - dist;
        for (uint32_t k = 0; k < len; ++k) {
          out.push_back(out[start + k]);
        }
      } else if (tok >= 1 && tok <= 127) {
        if (pos + 1 + tok > end) {
          return fail();
        }
        out.insert(out.end(), input.begin() + static_cast<long>(pos + 1),
                   input.begin() + static_cast<long>(pos + 1 + tok));
        pos += 1 + tok;
      } else {
        return fail();
      }
    }
    if (out.size() - produced0 != raw_len) {
      return fail();
    }
  }
  return out;
}

}  // namespace exo::apps
