#include "apps/workload.h"

#include <cstdio>

#include "sim/rng.h"

namespace exo::apps {

namespace {

const char* kIdentifiers[] = {"node",   "symbol", "type",   "emit",  "tree",
                              "block",  "stmt",   "expr",   "token", "label",
                              "offset", "align",  "field",  "proto", "value"};

}  // namespace

std::vector<uint8_t> FileContent(const FileSpec& spec) {
  sim::Rng rng(spec.seed);
  std::string s;
  s.reserve(spec.size + 128);
  s += "/* " + spec.path + " — generated source */\n";
  s += "#include \"c.h\"\n\n";
  while (s.size() < spec.size) {
    const char* fn = kIdentifiers[rng.Below(15)];
    const char* arg = kIdentifiers[rng.Below(15)];
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "static int %s_%llu(struct %s *%s) {\n"
                  "  if (%s->count > %llu) {\n"
                  "    return %s_emit(%s, %llu);\n"
                  "  }\n"
                  "  %s->next = %s->prev;\n"
                  "  return 0;\n"
                  "}\n\n",
                  fn, static_cast<unsigned long long>(rng.Below(1000)), arg, arg, arg,
                  static_cast<unsigned long long>(rng.Below(64)), fn, arg,
                  static_cast<unsigned long long>(rng.Below(16)), arg, arg);
    s += buf;
  }
  s.resize(spec.size);
  return std::vector<uint8_t>(s.begin(), s.end());
}

TreeSpec LccTree(uint64_t seed) {
  sim::Rng rng(seed);
  TreeSpec t;
  t.dirs = {"src", "src/cpp", "include", "etc", "lib", "doc"};
  struct DirPlan {
    const char* dir;
    int files;
    uint32_t min_size;
    uint32_t max_size;
    const char* ext;
  };
  const DirPlan plans[] = {
      {"src", 45, 8000, 90000, ".c"},      // the compiler proper: bigger files
      {"src/cpp", 18, 4000, 30000, ".c"},  // preprocessor
      {"include", 22, 1000, 12000, ".h"},
      {"etc", 10, 2000, 20000, ".c"},
      {"lib", 10, 3000, 25000, ".c"},
      {"doc", 6, 4000, 40000, ".1"},
  };
  for (const auto& p : plans) {
    for (int i = 0; i < p.files; ++i) {
      FileSpec f;
      f.path = std::string(p.dir) + "/f" + std::to_string(i) + p.ext;
      f.size = static_cast<uint32_t>(rng.Range(p.min_size, p.max_size));
      f.seed = rng.Next();
      t.total_bytes += f.size;
      t.files.push_back(std::move(f));
    }
  }
  return t;
}

Status WriteTree(os::UnixEnv& env, const TreeSpec& tree, const std::string& prefix) {
  Status s = env.Mkdir(prefix);
  if (s != Status::kOk && s != Status::kAlreadyExists) {
    return s;
  }
  for (const auto& d : tree.dirs) {
    s = env.Mkdir(prefix + "/" + d);
    if (s != Status::kOk && s != Status::kAlreadyExists) {
      return s;
    }
  }
  for (const auto& f : tree.files) {
    auto content = FileContent(f);
    auto fd = env.Open(prefix + "/" + f.path, /*create=*/true);
    if (!fd.ok()) {
      return fd.status();
    }
    auto n = env.Write(*fd, content);
    if (!n.ok()) {
      return n.status();
    }
    s = env.Close(*fd);
    if (s != Status::kOk) {
      return s;
    }
  }
  return Status::kOk;
}

}  // namespace exo::apps
