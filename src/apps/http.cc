#include "apps/http.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>

namespace exo::apps {

namespace {

// Per-request OS-path costs (beyond the per-segment TCP profile), in cycles.
// Calibrated so the Figure 3 ordering and rough factors reproduce: NCSA pays a fork
// per request; Harvest avoids the fork but runs a heavyweight cache + logging path;
// the Socket servers pay accept/open/stat/close syscalls; Cheetah resolves requests
// via application-cached pointers to file-cache blocks.
constexpr sim::Cycles kNcsaPerRequest = 260'000;    // fork + exec-lite + FS open path
constexpr sim::Cycles kHarvestPerRequest = 26'000;  // cache lookup, logging, select loop
constexpr sim::Cycles kSocketBsdPerRequest = 24'000;  // accept/open/stat/read/close
constexpr sim::Cycles kSocketXokPerRequest = 11'000;   // same ops as libOS calls
constexpr sim::Cycles kCheetahPerRequest = 1'400;     // cached file pointers (XIO)
constexpr sim::Cycles kParseCost = 600;
// Shedding a request must cost far less than serving one, or rejection itself
// collapses under load: a canned 503 is a table-free header write.
constexpr sim::Cycles kRejectCost = 500;

net::TcpProfile ProfileFor(ServerStyle s) {
  switch (s) {
    case ServerStyle::kNcsaBsd:
    case ServerStyle::kHarvestBsd:
    case ServerStyle::kSocketBsd:
      return net::BsdSocketProfile();
    case ServerStyle::kSocketXok:
      return net::XokSocketProfile();
    case ServerStyle::kCheetah:
      return net::CheetahProfile();
  }
  return net::BsdSocketProfile();
}

}  // namespace

const char* ServerStyleName(ServerStyle s) {
  switch (s) {
    case ServerStyle::kNcsaBsd:
      return "NCSA/BSD";
    case ServerStyle::kHarvestBsd:
      return "Harvest/BSD";
    case ServerStyle::kSocketBsd:
      return "Socket/BSD";
    case ServerStyle::kSocketXok:
      return "Socket/Xok";
    case ServerStyle::kCheetah:
      return "Cheetah";
  }
  return "?";
}

HttpServer::HttpServer(sim::Engine* engine, const sim::CostModel* cost, ServerStyle style,
                       net::IpAddr ip)
    : engine_(engine),
      cost_(cost),
      style_(style),
      cpu_(engine),
      checksums_(cost, [this](sim::Cycles c) { cpu_.Occupy(c); }) {
  net::TcpStack::Hooks hooks;
  hooks.engine = engine_;
  hooks.cost = cost_;
  hooks.cpu = &cpu_;
  hooks.transmit = [this](hw::Packet p, sim::Cycles when) {
    // Route by destination IP (offset 5..8 of the frame); one client per link.
    net::IpAddr dst = static_cast<net::IpAddr>(p.bytes[5]) |
                      (static_cast<net::IpAddr>(p.bytes[6]) << 8) |
                      (static_cast<net::IpAddr>(p.bytes[7]) << 16) |
                      (static_cast<net::IpAddr>(p.bytes[8]) << 24);
    auto it = routes_.find(dst);
    if (it == routes_.end()) {
      return;
    }
    hw::Nic* nic = it->second;
    engine_->ScheduleAt(std::max(when, engine_->now()),
                        [nic, p = std::move(p)]() mutable { nic->Transmit(std::move(p)); });
  };
  stack_ = std::make_unique<net::TcpStack>(hooks, ip, ProfileFor(style));
}

void HttpServer::SetTracer(trace::Tracer* tracer) {
  tracer_ = tracer;
  trace_track_ = tracer->NewTrack("server");
  cpu_.SetTracer(tracer, tracer->NewTrack("server.cpu"));
  stack_->SetTracer(tracer, trace_track_);
}

void HttpServer::AttachNic(hw::Nic* nic, net::IpAddr peer_ip) {
  routes_[peer_ip] = nic;
  nic->SetReceiveHandler([this](hw::Packet p) { stack_->Input(p); });
}

void HttpServer::AddDocument(const std::string& name, std::vector<uint8_t> content) {
  docs_[name] = std::move(content);
  doc_ids_[name] = next_doc_id_++;
}

void HttpServer::SetOverloadPolicy(const net::ServerOverloadPolicy& policy) {
  policy_ = policy;
}

Status HttpServer::Listen(net::Port port) {
  return stack_->Listen(
      port,
      [this](net::TcpConn* c) {
        c->set_on_data(
            [this](net::TcpConn* conn, std::span<const uint8_t> d) { OnRequest(conn, d); });
        c->set_on_close([this](net::TcpConn* conn) {
          partial_.erase(conn);
          DisarmDeadline(conn);
          if (conn->state() == net::TcpConn::State::kCloseWait) {
            conn->Close();  // client closed first (e.g. abort): close our side too
          }
        });
      },
      policy_.enabled ? policy_.listen_backlog : 0);
}

void HttpServer::ArmDeadline(net::TcpConn* conn) {
  if (!policy_.enabled || policy_.request_deadline_us == 0) {
    return;
  }
  const uint64_t epoch = ++deadline_epoch_;
  DeadlineEntry& e = deadlines_[conn];
  if (e.timer != 0) {
    engine_->Cancel(e.timer);
  }
  e.epoch = epoch;
  e.timer = engine_->ScheduleAfter(
      policy_.request_deadline_us * cost_->cpu_mhz, [this, conn, epoch] {
        auto it = deadlines_.find(conn);
        if (it == deadlines_.end() || it->second.epoch != epoch) {
          return;  // completed (or the PCB was reused) before the timer fired
        }
        deadlines_.erase(it);
        ++deadline_aborts_;
        stack_->Abort(conn);
      });
}

void HttpServer::DisarmDeadline(net::TcpConn* conn) {
  auto it = deadlines_.find(conn);
  if (it == deadlines_.end()) {
    return;
  }
  if (it->second.timer != 0) {
    engine_->Cancel(it->second.timer);
  }
  deadlines_.erase(it);
}

sim::Cycles HttpServer::PerRequestOsCost(size_t doc_size) const {
  switch (style_) {
    case ServerStyle::kNcsaBsd:
      return kNcsaPerRequest + cost_->CopyCost(doc_size);  // read() into user space
    case ServerStyle::kHarvestBsd:
      return kHarvestPerRequest;  // served from its user-space cache (already copied)
    case ServerStyle::kSocketBsd:
      return kSocketBsdPerRequest + cost_->CopyCost(doc_size);
    case ServerStyle::kSocketXok:
      return kSocketXokPerRequest + cost_->CopyCost(doc_size);
    case ServerStyle::kCheetah:
      return kCheetahPerRequest;  // transmit straight from the file cache: no copy
  }
  return 0;
}

void HttpServer::OnRequest(net::TcpConn* conn, std::span<const uint8_t> data) {
  std::string& buf = partial_[conn];
  buf.append(reinterpret_cast<const char*>(data.data()), data.size());
  auto end = buf.find("\r\n\r\n");
  if (end == std::string::npos) {
    return;
  }

  if (policy_.enabled) {
    // Admission control on CPU backlog with hysteresis: the meter's busy_until
    // is exactly the queueing delay a request admitted *now* would see before
    // its first cycle of service.
    const sim::Cycles now = engine_->now();
    const sim::Cycles backlog = cpu_.busy_until() > now ? cpu_.busy_until() - now : 0;
    const sim::Cycles mhz = cost_->cpu_mhz;
    if (!shedding_ && backlog >= policy_.high_watermark_us * mhz) {
      shedding_ = true;
      if (tracer_ != nullptr && tracer_->enabled(trace::Category::kApp)) {
        tracer_->Instant(trace::Category::kApp, trace_track_, "http.shed_on", now, backlog);
      }
    } else if (shedding_ && backlog <= policy_.low_watermark_us * mhz) {
      shedding_ = false;
      if (tracer_ != nullptr && tracer_->enabled(trace::Category::kApp)) {
        tracer_->Instant(trace::Category::kApp, trace_track_, "http.shed_off", now, backlog);
      }
    }
    if (shedding_) {
      // Reject before parsing: the whole point is to spend ~nothing per
      // turned-away request so goodput plateaus instead of cratering.
      ++rejected_;
      buf.clear();
      cpu_.Occupy(kRejectCost);
      static const std::string k503 =
          "HTTP/1.0 503 Service Unavailable\r\nRetry-After: 1\r\nContent-Length: 0\r\n\r\n";
      conn->Send(std::vector<uint8_t>(k503.begin(), k503.end()));
      conn->set_on_send_complete([this](net::TcpConn* c) { c->Close(); });
      return;
    }
  }

  const sim::Cycles parse_done = cpu_.Occupy(kParseCost);

  std::string name;
  if (buf.rfind("GET /", 0) == 0) {
    auto sp = buf.find(' ', 5);
    name = buf.substr(5, sp == std::string::npos ? std::string::npos : sp - 5);
  }
  buf.clear();

  auto it = docs_.find(name);
  std::string header;
  if (it == docs_.end()) {
    header = "HTTP/1.0 404 Not Found\r\nContent-Length: 0\r\n\r\n";
    cpu_.Occupy(1'000);
    conn->Send(std::vector<uint8_t>(header.begin(), header.end()));
    conn->set_on_send_complete([this](net::TcpConn* c) {
      DisarmDeadline(c);
      c->Close();
    });
    ArmDeadline(conn);
    return;
  }
  const std::vector<uint8_t>& body = it->second;
  const bool tracing = tracer_ != nullptr && tracer_->enabled(trace::Category::kApp);
  // The copy portion of the OS path is file-cache work; the remainder is the
  // syscall path. Splitting the single Occupy keeps the total cycles identical
  // while letting the trace attribute the two separately.
  sim::Cycles copy_part = 0;
  if (style_ == ServerStyle::kNcsaBsd || style_ == ServerStyle::kSocketBsd ||
      style_ == ServerStyle::kSocketXok) {
    copy_part = cost_->CopyCost(body.size());
  }
  const sim::Cycles os_part = PerRequestOsCost(body.size()) - copy_part;
  sim::Cycles done = cpu_.Occupy(os_part);
  if (tracing && os_part > 0) {
    tracer_->Begin(trace::Category::kSyscall, trace_track_, "os", done - os_part, os_part);
    tracer_->End(trace::Category::kSyscall, trace_track_, "os", done, os_part);
  }
  if (copy_part > 0) {
    done = cpu_.Occupy(copy_part);
    if (tracing) {
      tracer_->Begin(trace::Category::kFs, trace_track_, "file_cache", done - copy_part,
                     copy_part);
      tracer_->End(trace::Category::kFs, trace_track_, "file_cache", done, copy_part);
    }
  }
  ++requests_;

  header = "HTTP/1.0 200 OK\r\nContent-Length: " + std::to_string(body.size()) + "\r\n\r\n";
  if (style_ == ServerStyle::kCheetah) {
    // Header: small copied segment. Body: straight from the file cache, with the
    // file's stored checksums — the CPU never touches the payload (Sec. 7.3).
    conn->Send(std::vector<uint8_t>(header.begin(), header.end()));
    if (!body.empty()) {
      const auto& sums = checksums_.For(doc_ids_[name], body);
      conn->Send(body, sums);
    }
  } else {
    std::vector<uint8_t> response(header.begin(), header.end());
    response.insert(response.end(), body.begin(), body.end());
    conn->Send(response);
  }
  conn->set_on_send_complete([this](net::TcpConn* c) {
    DisarmDeadline(c);
    c->Close();
  });
  ArmDeadline(conn);
  if (tracing) {
    // The request's CPU window: parse through the last transmit Occupy. Windows
    // are serialized on the meter, so these spans never interleave.
    tracer_->Begin(trace::Category::kApp, trace_track_, "http.request",
                   parse_done - kParseCost, body.size());
    tracer_->End(trace::Category::kApp, trace_track_, "http.request", cpu_.busy_until(),
                 body.size());
  }
}

HttpClient::HttpClient(sim::Engine* engine, const sim::CostModel* cost, hw::Nic* nic,
                       net::IpAddr ip, net::IpAddr server_ip, std::string doc,
                       int concurrency)
    : engine_(engine),
      nic_(nic),
      server_ip_(server_ip),
      doc_(std::move(doc)),
      concurrency_(concurrency) {
  net::TcpStack::Hooks hooks;
  hooks.engine = engine;
  hooks.cost = cost;
  hooks.cpu = nullptr;  // load generators are infinitely fast
  hooks.transmit = [this](hw::Packet p, sim::Cycles when) {
    engine_->ScheduleAt(std::max(when, engine_->now()),
                        [this, p = std::move(p)]() mutable { nic_->Transmit(std::move(p)); });
  };
  stack_ = std::make_unique<net::TcpStack>(hooks, ip, net::ClientProfile());
  nic->SetReceiveHandler([this](hw::Packet p) { stack_->Input(p); });
}

void HttpClient::SetTracer(trace::Tracer* tracer, const std::string& name) {
  tracer_ = tracer;
  stack_->SetTracer(tracer, tracer->NewTrack(name));
  latency_hist_ = tracer->Histogram("http.request_latency_cycles");
}

void HttpClient::Start(sim::Cycles deadline) {
  deadline_ = deadline;
  for (int i = 0; i < concurrency_; ++i) {
    StartOne();
  }
}

void HttpClient::StartOne() {
  if (engine_->now() >= deadline_) {
    return;
  }
  std::string req = "GET /" + doc_ + " HTTP/1.0\r\n\r\n";
  const sim::Cycles start = engine_->now();
  // Handlers go on the PCB before the handshake completes, so every close path
  // — including a pre-establishment abort (SYN retry exhaustion) — reissues
  // this loop slot instead of silently retiring it.
  net::TcpConn* c = stack_->Connect(server_ip_, 80, [req](net::TcpConn* conn) {
    conn->Send(std::vector<uint8_t>(req.begin(), req.end()));
  });
  c->set_on_data([this](net::TcpConn*, std::span<const uint8_t> d) { bytes_ += d.size(); });
  c->set_on_close([this, start](net::TcpConn* conn) {
    inflight_.erase(conn);
    if (conn->aborted()) {
      // Reset mid-request (server deadline abort or retry exhaustion): not a
      // completed fetch. Keep the closed loop offering load.
      StartOne();
      return;
    }
    // The server closes after the response: we have the whole document.
    if (latency_hist_ != nullptr && tracer_->enabled(trace::Category::kApp)) {
      latency_hist_->Record(engine_->now() - start);
    }
    ++completed_;
    conn->Close();  // finish our side; the stack reaps the PCB when fully closed
    StartOne();     // closed loop: immediately issue the next request
  });
  if (request_timeout_ != 0) {
    const uint64_t epoch = ++timeout_epoch_;
    inflight_[c] = epoch;
    engine_->ScheduleAfter(request_timeout_, [this, c, epoch] {
      auto it = inflight_.find(c);
      if (it != inflight_.end() && it->second == epoch) {
        stack_->Abort(c);  // fires on_close with aborted() set
      }
    });
  }
}

OpenLoopHttpClient::OpenLoopHttpClient(sim::Engine* engine, const sim::CostModel* cost,
                                       hw::Nic* nic, net::IpAddr ip, net::IpAddr server_ip,
                                       std::string doc, sim::Cycles interval_cycles,
                                       net::TcpProfile profile)
    : engine_(engine),
      nic_(nic),
      server_ip_(server_ip),
      doc_(std::move(doc)),
      interval_(interval_cycles) {
  net::TcpStack::Hooks hooks;
  hooks.engine = engine;
  hooks.cost = cost;
  hooks.cpu = nullptr;  // load generators are infinitely fast
  hooks.transmit = [this](hw::Packet p, sim::Cycles when) {
    engine_->ScheduleAt(std::max(when, engine_->now()),
                        [this, p = std::move(p)]() mutable { nic_->Transmit(std::move(p)); });
  };
  stack_ = std::make_unique<net::TcpStack>(hooks, ip, profile);
  nic->SetReceiveHandler([this](hw::Packet p) { stack_->Input(p); });
}

void OpenLoopHttpClient::Start(sim::Cycles deadline) {
  deadline_ = deadline;
  Tick();
}

void OpenLoopHttpClient::Tick() {
  if (engine_->now() >= deadline_) {
    return;
  }
  IssueOne();
  engine_->ScheduleAfter(interval_, [this] { Tick(); });
}

namespace {

// Classifies a captured HTTP/1.0 response: status from the first line, body
// completeness against Content-Length.
enum class RespKind { kOk, kShed, kBad };

RespKind ClassifyResponse(const std::string& resp) {
  if (resp.rfind("HTTP/1.0 503", 0) == 0) {
    return RespKind::kShed;
  }
  if (resp.rfind("HTTP/1.0 200", 0) != 0) {
    return RespKind::kBad;
  }
  const auto blank = resp.find("\r\n\r\n");
  if (blank == std::string::npos) {
    return RespKind::kBad;
  }
  const auto cl = resp.find("Content-Length: ");
  size_t want = 0;
  if (cl != std::string::npos && cl < blank) {
    want = std::strtoull(resp.c_str() + cl + 16, nullptr, 10);
  }
  return resp.size() - (blank + 4) == want ? RespKind::kOk : RespKind::kBad;
}

}  // namespace

void OpenLoopHttpClient::IssueOne() {
  ++issued_;
  std::string req = "GET /" + doc_ + " HTTP/1.0\r\n\r\n";
  const sim::Cycles start = engine_->now();
  net::TcpConn* c = stack_->Connect(
      server_ip_, 80, [req](net::TcpConn* conn) {
        conn->Send(std::vector<uint8_t>(req.begin(), req.end()));
      });
  Pending& pending = responses_[c];
  pending.epoch = ++timeout_epoch_;
  c->set_on_data([this](net::TcpConn* conn, std::span<const uint8_t> d) {
    bytes_ += d.size();
    auto it = responses_.find(conn);
    if (it != responses_.end()) {
      it->second.data.append(reinterpret_cast<const char*>(d.data()), d.size());
    }
  });
  c->set_on_close([this, start](net::TcpConn* conn) {
    auto it = responses_.find(conn);
    if (it == responses_.end()) {
      return;  // already classified (close delivered once per conn, but be safe)
    }
    const std::string resp = std::move(it->second.data);
    responses_.erase(it);
    if (conn->aborted()) {
      ++failed_;  // RST (server deadline abort), retry exhaustion, or SYN shed
      return;
    }
    switch (ClassifyResponse(resp)) {
      case RespKind::kOk:
        ++completed_;
        latency_.Record(engine_->now() - start);
        break;
      case RespKind::kShed:
        ++rejected_;
        break;
      case RespKind::kBad:
        ++failed_;
        break;
    }
    conn->Close();
  });
  if (request_timeout_ != 0) {
    const uint64_t epoch = pending.epoch;
    engine_->ScheduleAfter(request_timeout_, [this, c, epoch] {
      auto it = responses_.find(c);
      if (it != responses_.end() && it->second.epoch == epoch) {
        stack_->Abort(c);  // fires on_close with aborted() set -> counted failed
      }
    });
  }
}

}  // namespace exo::apps
