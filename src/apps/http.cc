#include "apps/http.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>

namespace exo::apps {

namespace {

// Per-request OS-path costs (beyond the per-segment TCP profile), in cycles.
// Calibrated so the Figure 3 ordering and rough factors reproduce: NCSA pays a fork
// per request; Harvest avoids the fork but runs a heavyweight cache + logging path;
// the Socket servers pay accept/open/stat/close syscalls; Cheetah resolves requests
// via application-cached pointers to file-cache blocks.
constexpr sim::Cycles kNcsaPerRequest = 260'000;    // fork + exec-lite + FS open path
constexpr sim::Cycles kHarvestPerRequest = 26'000;  // cache lookup, logging, select loop
constexpr sim::Cycles kSocketBsdPerRequest = 24'000;  // accept/open/stat/read/close
constexpr sim::Cycles kSocketXokPerRequest = 11'000;   // same ops as libOS calls
constexpr sim::Cycles kCheetahPerRequest = 1'400;     // cached file pointers (XIO)
constexpr sim::Cycles kParseCost = 600;
// Shedding a request must cost far less than serving one, or rejection itself
// collapses under load: a canned 503 is a table-free header write.
constexpr sim::Cycles kRejectCost = 500;
// A response-cache hit skips the per-request OS path entirely: one hash probe
// plus stapling the prepared header onto the pinned body.
constexpr sim::Cycles kCacheHitCost = 300;

net::TcpProfile ProfileFor(ServerStyle s) {
  switch (s) {
    case ServerStyle::kNcsaBsd:
    case ServerStyle::kHarvestBsd:
    case ServerStyle::kSocketBsd:
      return net::BsdSocketProfile();
    case ServerStyle::kSocketXok:
      return net::XokSocketProfile();
    case ServerStyle::kCheetah:
      return net::CheetahProfile();
  }
  return net::BsdSocketProfile();
}

}  // namespace

const char* ServerStyleName(ServerStyle s) {
  switch (s) {
    case ServerStyle::kNcsaBsd:
      return "NCSA/BSD";
    case ServerStyle::kHarvestBsd:
      return "Harvest/BSD";
    case ServerStyle::kSocketBsd:
      return "Socket/BSD";
    case ServerStyle::kSocketXok:
      return "Socket/Xok";
    case ServerStyle::kCheetah:
      return "Cheetah";
  }
  return "?";
}

HttpServer::HttpServer(sim::Engine* engine, const sim::CostModel* cost, ServerStyle style,
                       net::IpAddr ip, const HttpServerOptions& options)
    : engine_(engine),
      cost_(cost),
      style_(style),
      cpu_(engine),
      options_(options),
      checksums_(cost, [this](sim::Cycles c) { cpu_.Occupy(c); }) {
  if (options_.response_cache_entries != 0) {
    cache_ = std::make_unique<net::HttpResponseCache>(options_.response_cache_entries);
  }
  net::TcpStack::Hooks hooks;
  hooks.engine = engine_;
  hooks.cost = cost_;
  hooks.cpu = &cpu_;
  hooks.transmit = [this](hw::Packet p, sim::Cycles when) {
    // Route by destination IP (offset 5..8 of the frame); one client per link.
    net::IpAddr dst = static_cast<net::IpAddr>(p.bytes[5]) |
                      (static_cast<net::IpAddr>(p.bytes[6]) << 8) |
                      (static_cast<net::IpAddr>(p.bytes[7]) << 16) |
                      (static_cast<net::IpAddr>(p.bytes[8]) << 24);
    auto it = routes_.find(dst);
    if (it == routes_.end()) {
      return;
    }
    hw::Nic* nic = it->second;
    engine_->ScheduleAt(std::max(when, engine_->now()),
                        [nic, p = std::move(p)]() mutable { nic->Transmit(std::move(p)); });
  };
  stack_ = std::make_unique<net::TcpStack>(hooks, ip, ProfileFor(style));
}

void HttpServer::SetTracer(trace::Tracer* tracer) {
  tracer_ = tracer;
  trace_track_ = tracer->NewTrack("server");
  cpu_.SetTracer(tracer, tracer->NewTrack("server.cpu"));
  stack_->SetTracer(tracer, trace_track_);
}

void HttpServer::AttachNic(hw::Nic* nic, net::IpAddr peer_ip) {
  routes_[peer_ip] = nic;
  nic->SetReceiveHandler([this](hw::Packet p) { stack_->Input(p); });
}

void HttpServer::AddDocument(const std::string& name, std::vector<uint8_t> content) {
  if (options_.documents != nullptr) {
    // Shared libFS store: bytes pinned there, checksums computed at write time.
    options_.documents->Put(name, std::move(content));
    return;
  }
  docs_[name] = std::move(content);
  doc_ids_[name] = next_doc_id_++;
}

void HttpServer::SetOverloadPolicy(const net::ServerOverloadPolicy& policy) {
  policy_ = policy;
}

Status HttpServer::Listen(net::Port port) {
  return stack_->Listen(
      port,
      [this](net::TcpConn* c) {
        c->set_on_data(
            [this](net::TcpConn* conn, std::span<const uint8_t> d) { OnRequest(conn, d); });
        c->set_on_close([this](net::TcpConn* conn) {
          partial_.erase(conn);
          DisarmDeadline(conn);
          if (conn->state() == net::TcpConn::State::kCloseWait) {
            conn->Close();  // client closed first (e.g. abort): close our side too
          }
        });
      },
      policy_.enabled ? policy_.listen_backlog : 0);
}

void HttpServer::ArmDeadline(net::TcpConn* conn) {
  if (!policy_.enabled || policy_.request_deadline_us == 0) {
    return;
  }
  const uint64_t epoch = ++deadline_epoch_;
  DeadlineEntry& e = deadlines_[conn];
  if (e.timer != 0) {
    engine_->Cancel(e.timer);
  }
  e.epoch = epoch;
  e.timer = engine_->ScheduleAfter(
      policy_.request_deadline_us * cost_->cpu_mhz, [this, conn, epoch] {
        auto it = deadlines_.find(conn);
        if (it == deadlines_.end() || it->second.epoch != epoch) {
          return;  // completed (or the PCB was reused) before the timer fired
        }
        deadlines_.erase(it);
        ++deadline_aborts_;
        stack_->Abort(conn);
      });
}

void HttpServer::Shutdown() {
  for (auto& [conn, entry] : deadlines_) {
    if (entry.timer != 0) {
      engine_->Cancel(entry.timer);
    }
  }
  deadlines_.clear();
  partial_.clear();
  stack_->Shutdown();
}

void HttpServer::DisarmDeadline(net::TcpConn* conn) {
  auto it = deadlines_.find(conn);
  if (it == deadlines_.end()) {
    return;
  }
  if (it->second.timer != 0) {
    engine_->Cancel(it->second.timer);
  }
  deadlines_.erase(it);
}

sim::Cycles HttpServer::PerRequestOsCost(size_t doc_size) const {
  switch (style_) {
    case ServerStyle::kNcsaBsd:
      return kNcsaPerRequest + cost_->CopyCost(doc_size);  // read() into user space
    case ServerStyle::kHarvestBsd:
      return kHarvestPerRequest;  // served from its user-space cache (already copied)
    case ServerStyle::kSocketBsd:
      return kSocketBsdPerRequest + cost_->CopyCost(doc_size);
    case ServerStyle::kSocketXok:
      return kSocketXokPerRequest + cost_->CopyCost(doc_size);
    case ServerStyle::kCheetah:
      return kCheetahPerRequest;  // transmit straight from the file cache: no copy
  }
  return 0;
}

void HttpServer::OnRequest(net::TcpConn* conn, std::span<const uint8_t> data) {
  {
    std::string& buf = partial_[conn];
    buf.append(reinterpret_cast<const char*>(data.data()), data.size());
    if (!options_.persistent) {
      // Historical one-request-per-connection path: the whole buffer is the
      // request once the blank line arrives.
      if (buf.find("\r\n\r\n") == std::string::npos) {
        return;
      }
      std::string request = std::move(buf);
      buf.clear();
      ServeOne(conn, request);
      return;
    }
  }
  // Persistent mode: the buffer may hold several pipelined requests; answer
  // them in arrival order (responses serialize on the connection anyway).
  for (;;) {
    auto pit = partial_.find(conn);
    if (pit == partial_.end()) {
      return;  // connection torn down while serving the previous request
    }
    std::string& buf = pit->second;
    const auto end = buf.find("\r\n\r\n");
    if (end == std::string::npos) {
      return;
    }
    std::string request = buf.substr(0, end + 4);
    buf.erase(0, end + 4);
    ServeOne(conn, request);
  }
}

void HttpServer::FinishResponse(net::TcpConn* conn, bool keep_alive) {
  if (keep_alive) {
    // Keep-alive: the connection outlives the response.
    conn->set_on_send_complete([this](net::TcpConn* c) { DisarmDeadline(c); });
  } else {
    conn->set_on_send_complete([this](net::TcpConn* c) {
      DisarmDeadline(c);
      c->Close();
    });
  }
  ArmDeadline(conn);
}

void HttpServer::SendPrepared(net::TcpConn* conn, const net::HttpResponseCache::Entry& e) {
  const net::DocumentStore::Doc* doc = e.doc;
  if (doc == nullptr || doc->bytes.empty()) {
    conn->Send(e.header);
    return;
  }
  if (options_.gather_tx && e.header.size() % 2 == 0 &&
      e.header.size() + doc->bytes.size() <= net::kMss) {
    // One wire segment: copied header + zero-copy body, checksum stapled from
    // the stored sums — the CPU never touches the payload, and small responses
    // cost one frame instead of two.
    conn->SendGather(e.header, doc->bytes,
                     net::ChecksumCombine(e.header_checksum, doc->checksums[0]));
    ++gather_sends_;
    return;
  }
  conn->Send(e.header);
  conn->Send(doc->bytes, doc->checksums);
}

void HttpServer::ServeOne(net::TcpConn* conn, const std::string& buf) {
  // Keep-alive needs both sides: the server armed for it AND a request that
  // speaks HTTP/1.1. A 1.0 client learns end-of-body from the close.
  const bool keep_alive = options_.persistent && buf.find("HTTP/1.1") != std::string::npos;
  if (policy_.enabled) {
    // Admission control on CPU backlog with hysteresis: the meter's busy_until
    // is exactly the queueing delay a request admitted *now* would see before
    // its first cycle of service.
    const sim::Cycles now = engine_->now();
    const sim::Cycles backlog = cpu_.busy_until() > now ? cpu_.busy_until() - now : 0;
    const sim::Cycles mhz = cost_->cpu_mhz;
    if (!shedding_ && backlog >= policy_.high_watermark_us * mhz) {
      shedding_ = true;
      if (tracer_ != nullptr && tracer_->enabled(trace::Category::kApp)) {
        tracer_->Instant(trace::Category::kApp, trace_track_, "http.shed_on", now, backlog);
      }
    } else if (shedding_ && backlog <= policy_.low_watermark_us * mhz) {
      shedding_ = false;
      if (tracer_ != nullptr && tracer_->enabled(trace::Category::kApp)) {
        tracer_->Instant(trace::Category::kApp, trace_track_, "http.shed_off", now, backlog);
      }
    }
    if (shedding_) {
      // Reject before parsing: the whole point is to spend ~nothing per
      // turned-away request so goodput plateaus instead of cratering.
      ++rejected_;
      cpu_.Occupy(kRejectCost);
      if (keep_alive) {
        static const std::string k503p =
            "HTTP/1.1 503 Service Unavailable\r\nRetry-After: 1\r\nContent-Length: 0\r\n\r\n";
        conn->Send(std::vector<uint8_t>(k503p.begin(), k503p.end()));
      } else {
        static const std::string k503 =
            "HTTP/1.0 503 Service Unavailable\r\nRetry-After: 1\r\nContent-Length: 0\r\n\r\n";
        conn->Send(std::vector<uint8_t>(k503.begin(), k503.end()));
        conn->set_on_send_complete([this](net::TcpConn* c) { c->Close(); });
      }
      return;
    }
  }

  const sim::Cycles parse_done = cpu_.Occupy(kParseCost);

  std::string name;
  if (buf.rfind("GET /", 0) == 0) {
    auto sp = buf.find(' ', 5);
    name = buf.substr(5, sp == std::string::npos ? std::string::npos : sp - 5);
  }
  const char* version = options_.persistent ? "HTTP/1.1" : "HTTP/1.0";

  // Response-cache fast path: one probe replaces the whole per-request OS walk.
  if (cache_ != nullptr && options_.documents != nullptr) {
    if (const net::HttpResponseCache::Entry* e = cache_->Get(name); e != nullptr) {
      cpu_.Occupy(kCacheHitCost);
      ++requests_;
      SendPrepared(conn, *e);
      FinishResponse(conn, keep_alive);
      return;
    }
  }

  const std::vector<uint8_t>* body_ptr = nullptr;
  const net::DocumentStore::Doc* doc = nullptr;
  if (options_.documents != nullptr) {
    doc = options_.documents->Find(name);
    body_ptr = doc != nullptr ? &doc->bytes : nullptr;
  } else {
    auto it = docs_.find(name);
    body_ptr = it != docs_.end() ? &it->second : nullptr;
  }
  std::string header;
  if (body_ptr == nullptr) {
    header = std::string(version) + " 404 Not Found\r\nContent-Length: 0\r\n\r\n";
    cpu_.Occupy(1'000);
    conn->Send(std::vector<uint8_t>(header.begin(), header.end()));
    FinishResponse(conn, keep_alive);
    return;
  }
  const std::vector<uint8_t>& body = *body_ptr;
  const bool tracing = tracer_ != nullptr && tracer_->enabled(trace::Category::kApp);
  // The copy portion of the OS path is file-cache work; the remainder is the
  // syscall path. Splitting the single Occupy keeps the total cycles identical
  // while letting the trace attribute the two separately.
  sim::Cycles copy_part = 0;
  if (style_ == ServerStyle::kNcsaBsd || style_ == ServerStyle::kSocketBsd ||
      style_ == ServerStyle::kSocketXok) {
    copy_part = cost_->CopyCost(body.size());
  }
  const sim::Cycles os_part = PerRequestOsCost(body.size()) - copy_part;
  sim::Cycles done = cpu_.Occupy(os_part);
  if (tracing && os_part > 0) {
    tracer_->Begin(trace::Category::kSyscall, trace_track_, "os", done - os_part, os_part);
    tracer_->End(trace::Category::kSyscall, trace_track_, "os", done, os_part);
  }
  if (copy_part > 0) {
    done = cpu_.Occupy(copy_part);
    if (tracing) {
      tracer_->Begin(trace::Category::kFs, trace_track_, "file_cache", done - copy_part,
                     copy_part);
      tracer_->End(trace::Category::kFs, trace_track_, "file_cache", done, copy_part);
    }
  }
  ++requests_;

  header = std::string(version) +
           " 200 OK\r\nContent-Length: " + std::to_string(body.size());
  if ((cache_ != nullptr || options_.gather_tx) && (header.size() + 4) % 2 != 0) {
    header += ' ';  // even-length pad: lets the stored body checksum staple on
  }
  header += "\r\n\r\n";
  if (style_ == ServerStyle::kCheetah && doc != nullptr) {
    // Full Cheetah path off the shared store: prepared header + stored body
    // checksums, optionally cached and/or gathered into one segment.
    net::HttpResponseCache::Entry e;
    e.header.assign(header.begin(), header.end());
    if (cache_ != nullptr || options_.gather_tx) {
      cpu_.Occupy(cost_->ChecksumCost(e.header.size()));
      e.header_checksum = net::Checksum(e.header);
    }
    e.doc = doc;
    e.doc_generation = doc->generation;
    if (cache_ != nullptr) {
      SendPrepared(conn, *cache_->Put(name, std::move(e)));
    } else {
      SendPrepared(conn, e);
    }
  } else if (style_ == ServerStyle::kCheetah) {
    // Header: small copied segment. Body: straight from the file cache, with the
    // file's stored checksums — the CPU never touches the payload (Sec. 7.3).
    conn->Send(std::vector<uint8_t>(header.begin(), header.end()));
    if (!body.empty()) {
      const auto& sums = checksums_.For(doc_ids_[name], body);
      conn->Send(body, sums);
    }
  } else {
    std::vector<uint8_t> response(header.begin(), header.end());
    response.insert(response.end(), body.begin(), body.end());
    conn->Send(response);
  }
  FinishResponse(conn, keep_alive);
  if (tracing) {
    // The request's CPU window: parse through the last transmit Occupy. Windows
    // are serialized on the meter, so these spans never interleave.
    tracer_->Begin(trace::Category::kApp, trace_track_, "http.request",
                   parse_done - kParseCost, body.size());
    tracer_->End(trace::Category::kApp, trace_track_, "http.request", cpu_.busy_until(),
                 body.size());
  }
}

HttpClient::HttpClient(sim::Engine* engine, const sim::CostModel* cost, hw::Nic* nic,
                       net::IpAddr ip, net::IpAddr server_ip, std::string doc,
                       int concurrency)
    : engine_(engine),
      nic_(nic),
      server_ip_(server_ip),
      doc_(std::move(doc)),
      concurrency_(concurrency) {
  net::TcpStack::Hooks hooks;
  hooks.engine = engine;
  hooks.cost = cost;
  hooks.cpu = nullptr;  // load generators are infinitely fast
  hooks.transmit = [this](hw::Packet p, sim::Cycles when) {
    engine_->ScheduleAt(std::max(when, engine_->now()),
                        [this, p = std::move(p)]() mutable { nic_->Transmit(std::move(p)); });
  };
  stack_ = std::make_unique<net::TcpStack>(hooks, ip, net::ClientProfile());
  nic->SetReceiveHandler([this](hw::Packet p) { stack_->Input(p); });
}

void HttpClient::SetTracer(trace::Tracer* tracer, const std::string& name) {
  tracer_ = tracer;
  stack_->SetTracer(tracer, tracer->NewTrack(name));
  latency_hist_ = tracer->Histogram("http.request_latency_cycles");
}

void HttpClient::Start(sim::Cycles deadline) {
  deadline_ = deadline;
  for (int i = 0; i < concurrency_; ++i) {
    StartOne();
  }
}

void HttpClient::StartOne() {
  if (engine_->now() >= deadline_) {
    return;
  }
  std::string req = "GET /" + doc_ + " HTTP/1.0\r\n\r\n";
  const sim::Cycles start = engine_->now();
  // Handlers go on the PCB before the handshake completes, so every close path
  // — including a pre-establishment abort (SYN retry exhaustion) — reissues
  // this loop slot instead of silently retiring it.
  net::TcpConn* c = stack_->Connect(server_ip_, 80, [req](net::TcpConn* conn) {
    conn->Send(std::vector<uint8_t>(req.begin(), req.end()));
  });
  c->set_on_data([this](net::TcpConn*, std::span<const uint8_t> d) { bytes_ += d.size(); });
  c->set_on_close([this, start](net::TcpConn* conn) {
    inflight_.erase(conn);
    if (conn->aborted()) {
      // Reset mid-request (server deadline abort or retry exhaustion): not a
      // completed fetch. Keep the closed loop offering load — immediately by
      // default, after a capped exponential backoff when armed (failover:
      // don't hammer a dead server at RTT rate).
      if (retry_base_ == 0) {
        StartOne();
        return;
      }
      const uint64_t shift = consec_aborts_ < 16 ? consec_aborts_ : 16;
      sim::Cycles delay = retry_base_ << shift;
      if (retry_cap_ != 0 && delay > retry_cap_) {
        delay = retry_cap_;
      }
      delay += retry_rng_.Below(retry_base_ / 2 + 1);
      ++consec_aborts_;
      engine_->ScheduleAfter(delay, [this] { StartOne(); });
      return;
    }
    consec_aborts_ = 0;
    // The server closes after the response: we have the whole document.
    if (latency_hist_ != nullptr && tracer_->enabled(trace::Category::kApp)) {
      latency_hist_->Record(engine_->now() - start);
    }
    ++completed_;
    conn->Close();  // finish our side; the stack reaps the PCB when fully closed
    StartOne();     // closed loop: immediately issue the next request
  });
  if (request_timeout_ != 0) {
    const uint64_t epoch = ++timeout_epoch_;
    inflight_[c] = epoch;
    engine_->ScheduleAfter(request_timeout_, [this, c, epoch] {
      auto it = inflight_.find(c);
      if (it != inflight_.end() && it->second == epoch) {
        stack_->Abort(c);  // fires on_close with aborted() set
      }
    });
  }
}

OpenLoopHttpClient::OpenLoopHttpClient(sim::Engine* engine, const sim::CostModel* cost,
                                       hw::Nic* nic, net::IpAddr ip, net::IpAddr server_ip,
                                       std::string doc, sim::Cycles interval_cycles,
                                       net::TcpProfile profile)
    : engine_(engine),
      nic_(nic),
      server_ip_(server_ip),
      doc_(std::move(doc)),
      interval_(interval_cycles) {
  net::TcpStack::Hooks hooks;
  hooks.engine = engine;
  hooks.cost = cost;
  hooks.cpu = nullptr;  // load generators are infinitely fast
  hooks.transmit = [this](hw::Packet p, sim::Cycles when) {
    engine_->ScheduleAt(std::max(when, engine_->now()),
                        [this, p = std::move(p)]() mutable { nic_->Transmit(std::move(p)); });
  };
  stack_ = std::make_unique<net::TcpStack>(hooks, ip, profile);
  nic->SetReceiveHandler([this](hw::Packet p) { stack_->Input(p); });
}

void OpenLoopHttpClient::Start(sim::Cycles deadline) {
  deadline_ = deadline;
  Tick();
}

void OpenLoopHttpClient::Tick() {
  if (engine_->now() >= deadline_) {
    return;
  }
  if (persistent_) {
    IssuePersistent();
  } else {
    IssueOne();
  }
  engine_->ScheduleAfter(interval_, [this] { Tick(); });
}

void OpenLoopHttpClient::EnablePersistent(size_t pool_size, size_t max_pipeline) {
  persistent_ = true;
  max_pipeline_ = max_pipeline;
  pool_.assign(pool_size, PoolSlot{});
}

void OpenLoopHttpClient::ClosePool() {
  for (PoolSlot& slot : pool_) {
    if (slot.conn != nullptr) {
      slot.conn->Close();
    }
  }
}

namespace {

// Classifies a captured HTTP response (1.0 or 1.1): status from the first
// line, body completeness against Content-Length.
enum class RespKind { kOk, kShed, kBad };

bool StatusIs(const std::string& resp, const char* code) {
  return (resp.rfind("HTTP/1.0 ", 0) == 0 || resp.rfind("HTTP/1.1 ", 0) == 0) &&
         resp.compare(9, 3, code) == 0;
}

RespKind ClassifyResponse(const std::string& resp) {
  if (StatusIs(resp, "503")) {
    return RespKind::kShed;
  }
  if (!StatusIs(resp, "200")) {
    return RespKind::kBad;
  }
  const auto blank = resp.find("\r\n\r\n");
  if (blank == std::string::npos) {
    return RespKind::kBad;
  }
  const auto cl = resp.find("Content-Length: ");
  size_t want = 0;
  if (cl != std::string::npos && cl < blank) {
    want = std::strtoull(resp.c_str() + cl + 16, nullptr, 10);
  }
  return resp.size() - (blank + 4) == want ? RespKind::kOk : RespKind::kBad;
}

}  // namespace

void OpenLoopHttpClient::IssuePersistent() {
  ++issued_;
  const size_t idx = pool_rr_++ % pool_.size();
  PoolSlot& s = pool_[idx];
  if (s.conn == nullptr) {
    if (engine_->now() < s.retry_at) {
      // Slot is backing off a dead connection: the arrival neither waits nor
      // redials — open-loop client-side failure.
      ++failed_;
      return;
    }
    OpenPoolSlot(idx);
  }
  if (s.starts.size() + s.queued.size() >= max_pipeline_) {
    // This connection's pipeline is full: client-side shed, the open-loop
    // analogue of a connect timeout. The arrival process does not wait.
    ++failed_;
    return;
  }
  const std::string doc = doc_picker_ ? doc_picker_() : doc_;
  std::string req = "GET /" + doc + " HTTP/1.1\r\n\r\n";
  const sim::Cycles start = engine_->now();
  s.starts.push_back(start);
  if (!s.established) {
    s.queued.push_back(std::move(req));  // flushed when the handshake completes
  } else {
    s.conn->Send(std::vector<uint8_t>(req.begin(), req.end()));
  }
  if (request_timeout_ != 0) {
    net::TcpConn* c = s.conn;
    engine_->ScheduleAfter(request_timeout_, [this, idx, c, start] {
      PoolSlot& slot = pool_[idx];
      // Still the same connection and the oldest outstanding request is at
      // least as old as ours: the pipeline is stuck. Abort the connection;
      // on_close fails everything outstanding and the slot reconnects lazily.
      if (slot.conn == c && !slot.starts.empty() && slot.starts.front() <= start) {
        stack_->Abort(c);
      }
    });
  }
}

void OpenLoopHttpClient::OpenPoolSlot(size_t idx) {
  PoolSlot& s = pool_[idx];
  s.established = false;
  s.rx.clear();
  ++conns_opened_;
  s.conn = stack_->Connect(server_ip_, 80, [this, idx](net::TcpConn* conn) {
    PoolSlot& slot = pool_[idx];
    if (slot.conn != conn) {
      return;  // the slot moved on (abort + reconnect) before we established
    }
    slot.established = true;
    for (std::string& req : slot.queued) {
      conn->Send(std::vector<uint8_t>(req.begin(), req.end()));
    }
    slot.queued.clear();
  });
  s.conn->set_on_data([this, idx](net::TcpConn* conn, std::span<const uint8_t> d) {
    bytes_ += d.size();
    PoolSlot& slot = pool_[idx];
    if (slot.conn != conn) {
      return;
    }
    slot.rx.append(reinterpret_cast<const char*>(d.data()), d.size());
    DrainPoolResponses(idx);
  });
  s.conn->set_on_close([this, idx](net::TcpConn* conn) {
    PoolSlot& slot = pool_[idx];
    if (slot.conn != conn) {
      return;
    }
    // Everything still outstanding on this connection is lost.
    failed_ += slot.starts.size();
    slot.starts.clear();
    slot.queued.clear();
    slot.rx.clear();
    slot.established = false;
    slot.conn = nullptr;  // next issue through this slot reconnects
    if (conn->aborted() && reconnect_base_ != 0) {
      // Died hard (RST, retry exhaustion): back the slot off before redialing,
      // doubling per consecutive failure up to the cap, with seeded jitter so
      // a fleet of slots doesn't redial in lockstep.
      const uint32_t shift = slot.consec_fails < 16 ? slot.consec_fails : 16;
      sim::Cycles delay = reconnect_base_ << shift;
      if (reconnect_cap_ != 0 && delay > reconnect_cap_) {
        delay = reconnect_cap_;
      }
      delay += reconnect_rng_.Below(reconnect_base_ / 2 + 1);
      slot.retry_at = engine_->now() + delay;
      ++slot.consec_fails;
    }
    if (conn->state() == net::TcpConn::State::kCloseWait) {
      conn->Close();  // server closed first: finish our side too
    }
  });
}

void OpenLoopHttpClient::DrainPoolResponses(size_t idx) {
  PoolSlot& s = pool_[idx];
  for (;;) {
    const auto blank = s.rx.find("\r\n\r\n");
    if (blank == std::string::npos) {
      return;
    }
    size_t want = 0;
    const auto cl = s.rx.find("Content-Length: ");
    if (cl != std::string::npos && cl < blank) {
      want = std::strtoull(s.rx.c_str() + cl + 16, nullptr, 10);
    }
    const size_t total = blank + 4 + want;
    if (s.rx.size() < total) {
      return;  // body still in flight
    }
    const bool ok = StatusIs(s.rx, "200");
    const bool shed = StatusIs(s.rx, "503");
    s.rx.erase(0, total);
    if (s.starts.empty()) {
      ++failed_;  // a response with no matching request: protocol desync
      continue;
    }
    const sim::Cycles start = s.starts.front();
    s.starts.pop_front();
    if (ok) {
      ++completed_;
      latency_.Record(engine_->now() - start);
      s.consec_fails = 0;  // the connection is healthy: forget the backoff streak
      s.retry_at = 0;
    } else if (shed) {
      ++rejected_;
    } else {
      ++failed_;
    }
  }
}

void OpenLoopHttpClient::IssueOne() {
  ++issued_;
  ++conns_opened_;  // one fresh connection per request in the historical mode
  const std::string doc = doc_picker_ ? doc_picker_() : doc_;
  std::string req = "GET /" + doc + " HTTP/1.0\r\n\r\n";
  const sim::Cycles start = engine_->now();
  net::TcpConn* c = stack_->Connect(
      server_ip_, 80, [req](net::TcpConn* conn) {
        conn->Send(std::vector<uint8_t>(req.begin(), req.end()));
      });
  Pending& pending = responses_[c];
  pending.epoch = ++timeout_epoch_;
  c->set_on_data([this](net::TcpConn* conn, std::span<const uint8_t> d) {
    bytes_ += d.size();
    auto it = responses_.find(conn);
    if (it != responses_.end()) {
      it->second.data.append(reinterpret_cast<const char*>(d.data()), d.size());
    }
  });
  c->set_on_close([this, start](net::TcpConn* conn) {
    auto it = responses_.find(conn);
    if (it == responses_.end()) {
      return;  // already classified (close delivered once per conn, but be safe)
    }
    const std::string resp = std::move(it->second.data);
    responses_.erase(it);
    if (conn->aborted()) {
      ++failed_;  // RST (server deadline abort), retry exhaustion, or SYN shed
      return;
    }
    switch (ClassifyResponse(resp)) {
      case RespKind::kOk:
        ++completed_;
        latency_.Record(engine_->now() - start);
        break;
      case RespKind::kShed:
        ++rejected_;
        break;
      case RespKind::kBad:
        ++failed_;
        break;
    }
    conn->Close();
  });
  if (request_timeout_ != 0) {
    const uint64_t epoch = pending.epoch;
    engine_->ScheduleAfter(request_timeout_, [this, c, epoch] {
      auto it = responses_.find(c);
      if (it != responses_.end() && it->second.epoch == epoch) {
        stack_->Abort(c);  // fires on_close with aborted() set -> counted failed
      }
    });
  }
}

}  // namespace exo::apps
