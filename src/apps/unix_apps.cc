#include "apps/unix_apps.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "apps/lz.h"
#include "sim/rng.h"

namespace exo::apps {

namespace {

constexpr size_t kIoChunk = 64 * 1024;

Result<std::vector<uint8_t>> ReadWhole(os::UnixEnv& env, const std::string& path) {
  auto fd = env.Open(path, false);
  if (!fd.ok()) {
    return fd.status();
  }
  std::vector<uint8_t> out;
  std::vector<uint8_t> chunk(kIoChunk);
  for (;;) {
    auto n = env.Read(*fd, chunk);
    if (!n.ok()) {
      env.Close(*fd);
      return n.status();
    }
    if (*n == 0) {
      break;
    }
    out.insert(out.end(), chunk.begin(), chunk.begin() + *n);
  }
  env.Close(*fd);
  return out;
}

Status WriteWhole(os::UnixEnv& env, const std::string& path,
                  std::span<const uint8_t> data) {
  auto fd = env.Open(path, /*create=*/true);
  if (!fd.ok()) {
    return fd.status();
  }
  for (size_t off = 0; off < data.size(); off += kIoChunk) {
    auto n = env.Write(*fd, data.subspan(off, std::min(kIoChunk, data.size() - off)));
    if (!n.ok()) {
      env.Close(*fd);
      return n.status();
    }
  }
  if (data.empty()) {
    // Creating an empty file is still a write op.
  }
  return env.Close(*fd);
}

}  // namespace

Status Cp(os::UnixEnv& env, const std::string& src, const std::string& dst) {
  auto in = env.Open(src, false);
  if (!in.ok()) {
    return in.status();
  }
  auto out = env.Open(dst, /*create=*/true);
  if (!out.ok()) {
    env.Close(*in);
    return out.status();
  }
  std::vector<uint8_t> chunk(kIoChunk);
  for (;;) {
    auto n = env.Read(*in, chunk);
    if (!n.ok()) {
      return n.status();
    }
    if (*n == 0) {
      break;
    }
    auto w = env.Write(*out, std::span<const uint8_t>(chunk.data(), *n));
    if (!w.ok()) {
      return w.status();
    }
  }
  env.Close(*in);
  return env.Close(*out);
}

Status CpR(os::UnixEnv& env, const std::string& src, const std::string& dst) {
  Status s = env.Mkdir(dst);
  if (s != Status::kOk && s != Status::kAlreadyExists) {
    return s;
  }
  auto entries = env.ReadDir(src);
  if (!entries.ok()) {
    return entries.status();
  }
  for (const auto& de : *entries) {
    std::string from = src + "/" + de.name;
    std::string to = dst + "/" + de.name;
    if (de.is_dir) {
      s = CpR(env, from, to);
    } else {
      s = Cp(env, from, to);
    }
    if (s != Status::kOk) {
      return s;
    }
  }
  return Status::kOk;
}

Status Gzip(os::UnixEnv& env, const std::string& src, const std::string& dst) {
  auto data = ReadWhole(env, src);
  if (!data.ok()) {
    return data.status();
  }
  env.Compute(static_cast<sim::Cycles>(static_cast<double>(data->size()) *
                                       kLzCompressCyclesPerByte));
  auto packed = LzCompress(*data);
  return WriteWhole(env, dst, packed);
}

Status Gunzip(os::UnixEnv& env, const std::string& src, const std::string& dst) {
  auto data = ReadWhole(env, src);
  if (!data.ok()) {
    return data.status();
  }
  bool ok = true;
  auto raw = LzDecompress(*data, &ok);
  if (!ok) {
    return Status::kInvalidArgument;
  }
  env.Compute(static_cast<sim::Cycles>(static_cast<double>(raw.size()) *
                                       kLzDecompressCyclesPerByte));
  return WriteWhole(env, dst, raw);
}

namespace {

// pax archive record: u8 kind (0 end, 1 file, 2 dir), u16 path length, path bytes,
// u32 size, then data for files.
void PaxCollect(os::UnixEnv& env, const std::string& root, const std::string& rel,
                std::vector<uint8_t>& out, Status* err) {
  std::string abs = rel.empty() ? root : root + "/" + rel;
  auto entries = env.ReadDir(abs);
  if (!entries.ok()) {
    *err = entries.status();
    return;
  }
  // Deterministic order.
  std::sort(entries->begin(), entries->end(),
            [](const fs::DirEnt& a, const fs::DirEnt& b) { return a.name < b.name; });
  for (const auto& de : *entries) {
    std::string rpath = rel.empty() ? de.name : rel + "/" + de.name;
    out.push_back(de.is_dir ? 2 : 1);
    out.push_back(static_cast<uint8_t>(rpath.size()));
    out.push_back(static_cast<uint8_t>(rpath.size() >> 8));
    out.insert(out.end(), rpath.begin(), rpath.end());
    if (de.is_dir) {
      for (int i = 0; i < 4; ++i) {
        out.push_back(0);
      }
      PaxCollect(env, root, rpath, out, err);
      if (*err != Status::kOk) {
        return;
      }
    } else {
      auto data = ReadWhole(env, abs + "/" + de.name);
      if (!data.ok()) {
        *err = data.status();
        return;
      }
      uint32_t n = static_cast<uint32_t>(data->size());
      for (int i = 0; i < 4; ++i) {
        out.push_back(static_cast<uint8_t>(n >> (8 * i)));
      }
      out.insert(out.end(), data->begin(), data->end());
    }
  }
}

}  // namespace

Status PaxWrite(os::UnixEnv& env, const std::string& dir, const std::string& archive) {
  std::vector<uint8_t> out;
  Status err = Status::kOk;
  PaxCollect(env, dir, "", out, &err);
  if (err != Status::kOk) {
    return err;
  }
  out.push_back(0);  // end marker
  env.TouchData(out.size());  // header construction and buffering
  return WriteWhole(env, archive, out);
}

Status PaxRead(os::UnixEnv& env, const std::string& archive, const std::string& dstdir) {
  auto data = ReadWhole(env, archive);
  if (!data.ok()) {
    return data.status();
  }
  Status s = env.Mkdir(dstdir);
  if (s != Status::kOk && s != Status::kAlreadyExists) {
    return s;
  }
  const std::vector<uint8_t>& a = *data;
  size_t pos = 0;
  while (pos < a.size() && a[pos] != 0) {
    uint8_t kind = a[pos];
    if (pos + 3 > a.size()) {
      return Status::kInvalidArgument;
    }
    uint16_t plen = static_cast<uint16_t>(a[pos + 1] | (a[pos + 2] << 8));
    pos += 3;
    if (pos + plen + 4 > a.size()) {
      return Status::kInvalidArgument;
    }
    std::string rpath(reinterpret_cast<const char*>(a.data() + pos), plen);
    pos += plen;
    uint32_t size = 0;
    for (int i = 0; i < 4; ++i) {
      size |= static_cast<uint32_t>(a[pos + static_cast<size_t>(i)]) << (8 * i);
    }
    pos += 4;
    if (kind == 2) {
      s = env.Mkdir(dstdir + "/" + rpath);
      if (s != Status::kOk && s != Status::kAlreadyExists) {
        return s;
      }
    } else {
      if (pos + size > a.size()) {
        return Status::kInvalidArgument;
      }
      s = WriteWhole(env, dstdir + "/" + rpath,
                     std::span<const uint8_t>(a.data() + pos, size));
      if (s != Status::kOk) {
        return s;
      }
      pos += size;
    }
  }
  return Status::kOk;
}

Result<int> DiffFile(os::UnixEnv& env, const std::string& a, const std::string& b) {
  auto da = ReadWhole(env, a);
  auto db = ReadWhole(env, b);
  if (!da.ok()) {
    return da.status();
  }
  if (!db.ok()) {
    return db.status();
  }
  env.TouchData(da->size() + db->size());
  return (*da == *db) ? 0 : 1;
}

Result<int> DiffTree(os::UnixEnv& env, const std::string& a, const std::string& b) {
  auto ea = env.ReadDir(a);
  if (!ea.ok()) {
    return ea.status();
  }
  int diffs = 0;
  for (const auto& de : *ea) {
    std::string pa = a + "/" + de.name;
    std::string pb = b + "/" + de.name;
    if (de.is_dir) {
      auto sub = DiffTree(env, pa, pb);
      if (!sub.ok()) {
        return sub;
      }
      diffs += *sub;
    } else {
      auto st = env.Stat(pb);
      if (!st.ok()) {
        ++diffs;
        continue;
      }
      auto d = DiffFile(env, pa, pb);
      if (!d.ok()) {
        return d;
      }
      diffs += *d;
    }
  }
  return diffs;
}

Status GccBuild(os::UnixEnv& env, const std::string& dir) {
  auto entries = env.ReadDir(dir);
  if (!entries.ok()) {
    return entries.status();
  }
  for (const auto& de : *entries) {
    std::string path = dir + "/" + de.name;
    if (de.is_dir) {
      Status s = GccBuild(env, path);
      if (s != Status::kOk) {
        return s;
      }
      continue;
    }
    if (de.name.size() < 2 || de.name.substr(de.name.size() - 2) != ".c") {
      continue;
    }
    auto src = ReadWhole(env, path);
    if (!src.ok()) {
      return src.status();
    }
    // Parse + optimize + emit.
    env.Compute(static_cast<sim::Cycles>(static_cast<double>(src->size()) *
                                         kCompileCyclesPerByte));
    // Object file ~40% of source size, content derived from the source.
    std::vector<uint8_t> obj(src->size() * 2 / 5);
    for (size_t i = 0; i < obj.size(); ++i) {
      obj[i] = static_cast<uint8_t>((*src)[i % src->size()] * 31 + i);
    }
    std::string opath = path.substr(0, path.size() - 2) + ".o";
    Status s = WriteWhole(env, opath, obj);
    if (s != Status::kOk) {
      return s;
    }
  }
  return Status::kOk;
}

Status RmTree(os::UnixEnv& env, const std::string& path) {
  auto st = env.Stat(path);
  if (!st.ok()) {
    return st.status();
  }
  if (!st->is_dir) {
    return env.Unlink(path);
  }
  auto entries = env.ReadDir(path);
  if (!entries.ok()) {
    return entries.status();
  }
  for (const auto& de : *entries) {
    Status s = RmTree(env, path + "/" + de.name);
    if (s != Status::kOk) {
      return s;
    }
  }
  return env.Unlink(path);
}

Status RmByExt(os::UnixEnv& env, const std::string& dir, const std::string& ext) {
  auto entries = env.ReadDir(dir);
  if (!entries.ok()) {
    return entries.status();
  }
  for (const auto& de : *entries) {
    std::string path = dir + "/" + de.name;
    if (de.is_dir) {
      Status s = RmByExt(env, path, ext);
      if (s != Status::kOk) {
        return s;
      }
    } else if (de.name.size() >= ext.size() &&
               de.name.compare(de.name.size() - ext.size(), ext.size(), ext) == 0) {
      Status s = env.Unlink(path);
      if (s != Status::kOk) {
        return s;
      }
    }
  }
  return Status::kOk;
}

Result<uint64_t> Wc(os::UnixEnv& env, const std::string& path) {
  auto data = ReadWhole(env, path);
  if (!data.ok()) {
    return data.status();
  }
  env.TouchData(data->size());
  uint64_t lines = 0;
  for (uint8_t c : *data) {
    lines += c == '\n' ? 1 : 0;
  }
  return lines;
}

Result<uint64_t> Grep(os::UnixEnv& env, const std::string& pattern,
                      const std::string& path) {
  auto data = ReadWhole(env, path);
  if (!data.ok()) {
    return data.status();
  }
  env.TouchData(data->size() * 2);  // pattern scan is heavier than wc
  uint64_t hits = 0;
  if (pattern.empty() || data->size() < pattern.size()) {
    return hits;
  }
  for (size_t i = 0; i + pattern.size() <= data->size(); ++i) {
    if (std::memcmp(data->data() + i, pattern.data(), pattern.size()) == 0) {
      ++hits;
    }
  }
  return hits;
}

Result<uint64_t> Cksum(os::UnixEnv& env, const std::string& dir, int rounds) {
  auto entries = env.ReadDir(dir);
  if (!entries.ok()) {
    return entries.status();
  }
  uint64_t sum = 0;
  for (int r = 0; r < rounds; ++r) {
    for (const auto& de : *entries) {
      if (de.is_dir) {
        continue;
      }
      auto data = ReadWhole(env, dir + "/" + de.name);
      if (!data.ok()) {
        return data.status();
      }
      env.TouchData(data->size());
      for (uint8_t c : *data) {
        sum = sum * 131 + c;
      }
    }
  }
  return sum;
}

Result<double> Tsp(os::UnixEnv& env, int ncities, int iterations, uint64_t seed) {
  sim::Rng rng(seed);
  std::vector<double> x(ncities);
  std::vector<double> y(ncities);
  for (int i = 0; i < ncities; ++i) {
    x[i] = rng.NextDouble();
    y[i] = rng.NextDouble();
  }
  auto dist = [&](int a, int b) {
    double dx = x[a] - x[b];
    double dy = y[a] - y[b];
    return std::sqrt(dx * dx + dy * dy);
  };
  std::vector<int> tour(ncities);
  for (int i = 0; i < ncities; ++i) {
    tour[i] = i;
  }
  // 2-opt passes; each pass is O(n^2) distance evaluations, charged to the CPU.
  for (int it = 0; it < iterations; ++it) {
    for (int i = 1; i < ncities - 1; ++i) {
      for (int j = i + 1; j < ncities; ++j) {
        double before = dist(tour[i - 1], tour[i]) + dist(tour[j], tour[(j + 1) % ncities]);
        double after = dist(tour[i - 1], tour[j]) + dist(tour[i], tour[(j + 1) % ncities]);
        if (after < before) {
          std::reverse(tour.begin() + i, tour.begin() + j + 1);
        }
      }
    }
    env.Compute(static_cast<sim::Cycles>(ncities) * ncities * 18);
  }
  double total = 0;
  for (int i = 0; i < ncities; ++i) {
    total += dist(tour[i], tour[(i + 1) % ncities]);
  }
  return total;
}

Result<double> Sor(os::UnixEnv& env, int n, int iterations) {
  std::vector<double> grid(static_cast<size_t>(n) * n, 0.0);
  for (int i = 0; i < n; ++i) {
    grid[static_cast<size_t>(i)] = 1.0;  // top boundary
  }
  const double omega = 1.25;
  for (int it = 0; it < iterations; ++it) {
    for (int i = 1; i < n - 1; ++i) {
      for (int j = 1; j < n - 1; ++j) {
        size_t p = static_cast<size_t>(i) * n + j;
        double neigh = grid[p - n] + grid[p + n] + grid[p - 1] + grid[p + 1];
        grid[p] += omega * (neigh / 4.0 - grid[p]);
      }
    }
    env.Compute(static_cast<sim::Cycles>(n) * n * 14);
  }
  double sum = 0;
  for (double v : grid) {
    sum += v;
  }
  return sum;
}

}  // namespace exo::apps
