#include "apps/xcp.h"

#include <algorithm>
#include <map>

namespace exo::apps {

Result<XcpStats> Xcp(os::System& sys, os::UnixEnv& env,
                     const std::vector<std::string>& srcs, const std::string& dstdir,
                     bool wait_for_writes) {
  if (sys.flavor() != os::Flavor::kXokExos || sys.xn() == nullptr || sys.cffs() == nullptr) {
    return Status::kNotSupported;
  }
  fs::Cffs& cffs = *sys.cffs();
  xn::Xn& xn = *sys.xn();
  auto& kernel = sys.kernel();
  XcpStats stats;

  Status mk = env.Mkdir(dstdir);
  if (mk != Status::kOk && mk != Status::kAlreadyExists) {
    return mk;
  }

  // Pass 1: enumerate every source block with its owning metadata block.
  struct SrcFile {
    fs::Cffs::Handle handle;
    uint64_t size = 0;
    std::vector<std::pair<hw::BlockId, hw::BlockId>> blocks;  // (block, parent)
  };
  std::vector<SrcFile> files;
  for (const auto& path : srcs) {
    auto h = cffs.Lookup(path);
    if (!h.ok()) {
      return h.status();
    }
    auto st = cffs.Stat(*h);
    if (!st.ok()) {
      return st.status();
    }
    SrcFile f;
    f.handle = *h;
    f.size = st->size;
    for (uint32_t i = 0; i < st->nblocks; ++i) {
      auto loc = cffs.BlockAt(*h, i);
      if (!loc.ok()) {
        return loc.status();
      }
      f.blocks.push_back(*loc);
      env.Compute(40);  // schedule construction
    }
    files.push_back(std::move(f));
  }

  // Pass 2: issue sorted asynchronous reads, grouped by owning metadata block (XN
  // proves ownership per parent); contiguous runs become single requests and the
  // disk merges across groups.
  std::map<hw::BlockId, std::vector<hw::BlockId>> by_parent;
  for (const auto& f : files) {
    for (auto [b, parent] : f.blocks) {
      if (xn.registry().Lookup(b) == nullptr) {
        by_parent[parent].push_back(b);
      }
    }
  }
  int outstanding = 0;
  Status first_err = Status::kOk;
  for (auto& [parent, blocks] : by_parent) {
    std::sort(blocks.begin(), blocks.end());
    std::vector<hw::FrameId> frames;
    frames.reserve(blocks.size());
    for (size_t i = 0; i < blocks.size(); ++i) {
      auto fr = kernel.SysFrameAlloc(0, xok::CapName{xok::kCapFs, 1});
      if (!fr.ok()) {
        return fr.status();
      }
      frames.push_back(*fr);
    }
    ++outstanding;
    Status s = xn.ReadAndInsert(parent, blocks, frames,
                                xn::Caps{xok::Capability::For({xok::kCapFs, 1})},
                                [&outstanding, &first_err](Status st) {
                                  if (st != Status::kOk) {
                                    first_err = st;
                                  }
                                  --outstanding;
                                });
    for (hw::FrameId fr : frames) {
      // Registry holds its own reference now; return ours through the kernel so
      // the caller env's ledger is debited.
      kernel.FrameUnref(fr, kernel.current_id());
    }
    if (s != Status::kOk) {
      return s;
    }
    ++stats.read_requests;
  }

  // Pass 3 (overlapped with the reads): create destination files at full size,
  // placed in one contiguous region so the writes are sequential.
  struct DstFile {
    fs::Cffs::Handle handle;
    const SrcFile* src = nullptr;
  };
  std::vector<DstFile> dsts;
  hw::BlockId hint = hw::kInvalidBlock;
  for (const auto& path : srcs) {
    auto leaf_pos = path.rfind('/');
    std::string leaf = leaf_pos == std::string::npos ? path : path.substr(leaf_pos + 1);
    const SrcFile& src = files[dsts.size()];
    auto dh = cffs.CreateSized(dstdir + "/" + leaf, env.Uid(), src.size, hint);
    if (!dh.ok()) {
      return dh.status();
    }
    if (!src.blocks.empty()) {
      auto first = cffs.BlockAt(*dh, 0);
      if (first.ok()) {
        hint = first->first + static_cast<hw::BlockId>(src.blocks.size());
      }
    }
    dsts.push_back({*dh, &src});
  }

  // Wait for all reads to land (wakeup-predicate-style block on the registry).
  {
    xok::WakeupPredicate p;
    p.host = [&outstanding] { return outstanding == 0; };
    if (outstanding > 0) {
      kernel.SysSleep(std::move(p));
    }
  }
  if (first_err != Status::kOk) {
    return first_err;
  }

  // Pass 4: bind the source cache frames to the destination blocks (no copy!) and
  // flush them in one large schedule.
  std::vector<hw::BlockId> to_write;
  for (const auto& d : dsts) {
    for (uint32_t i = 0; i < d.src->blocks.size(); ++i) {
      auto dloc = cffs.BlockAt(d.handle, i);
      if (!dloc.ok()) {
        return dloc.status();
      }
      const xn::RegistryEntry* se = xn.registry().Lookup(d.src->blocks[i].first);
      EXO_CHECK(se != nullptr);
      Status s = xn.InsertMapping(dloc->first, dloc->second, se->frame, /*dirty=*/true,
                                  xn::Caps{xok::Capability::For({xok::kCapFs, 1})});
      if (s != Status::kOk) {
        return s;
      }
      to_write.push_back(dloc->first);
      ++stats.blocks_copied;
      env.Compute(40);
    }
  }
  std::sort(to_write.begin(), to_write.end());
  if (!to_write.empty()) {
    auto pending = std::make_shared<int>(1);
    auto werr = std::make_shared<Status>(Status::kOk);
    Status s = xn.Write(to_write, [pending, werr](Status st) {
      if (st != Status::kOk) {
        *werr = st;
      }
      --*pending;
    });
    if (s != Status::kOk) {
      return s;
    }
    if (wait_for_writes) {
      xok::WakeupPredicate p;
      p.host = [pending] { return *pending == 0; };
      kernel.SysSleep(std::move(p));
      if (*werr != Status::kOk) {
        return *werr;
      }
    }
  }
  return stats;
}

}  // namespace exo::apps
