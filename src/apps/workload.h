// Workload generator: a synthetic source tree shaped like the lcc compiler
// distribution the paper installs (Table 1: the compressed archive is 1.1 MB).
//
// The tree has lcc's shape — a few directories, many small-to-medium C files with
// repetitive, compressible text — so the file-size distribution, directory
// operations, and compressibility driving Figure 2 match the paper's workload.
#ifndef EXO_APPS_WORKLOAD_H_
#define EXO_APPS_WORKLOAD_H_

#include <string>
#include <vector>

#include "exos/unix_env.h"
#include "sim/status.h"

namespace exo::apps {

struct FileSpec {
  std::string path;   // relative, e.g. "src/alloc.c"
  uint32_t size = 0;  // bytes
  uint64_t seed = 0;  // content seed
};

struct TreeSpec {
  std::vector<std::string> dirs;   // relative directory paths, parents first
  std::vector<FileSpec> files;
  uint64_t total_bytes = 0;
};

// The lcc-like tree: ~110 C files across 6 directories, ~3.4 MB of source.
TreeSpec LccTree(uint64_t seed = 42);

// Deterministic C-like file content for a spec.
std::vector<uint8_t> FileContent(const FileSpec& spec);

// Materializes a tree under `prefix` (creating directories), writing real content.
Status WriteTree(os::UnixEnv& env, const TreeSpec& tree, const std::string& prefix);

}  // namespace exo::apps

#endif  // EXO_APPS_WORKLOAD_H_
