// The unmodified UNIX applications of Sections 6 and 8, written once against
// UnixEnv: cp, gzip/gunzip (real LZSS), pax (real archive format), diff, gcc (cost-
// modeled compile over real file I/O), rm, wc, grep, cksum, and the CPU-bound tsp
// and sor solvers. Each function is one program run (what a shell would exec).
#ifndef EXO_APPS_UNIX_APPS_H_
#define EXO_APPS_UNIX_APPS_H_

#include <string>

#include "exos/unix_env.h"

namespace exo::apps {

// cp src dst (single file).
Status Cp(os::UnixEnv& env, const std::string& src, const std::string& dst);
// cp -r srcdir dstdir.
Status CpR(os::UnixEnv& env, const std::string& src, const std::string& dst);
// gzip src > dst (LZSS; charges compression CPU).
Status Gzip(os::UnixEnv& env, const std::string& src, const std::string& dst);
Status Gunzip(os::UnixEnv& env, const std::string& src, const std::string& dst);
// pax -w dir > archive  /  pax -r archive under dstdir.
Status PaxWrite(os::UnixEnv& env, const std::string& dir, const std::string& archive);
Status PaxRead(os::UnixEnv& env, const std::string& archive, const std::string& dstdir);
// diff -r a b; returns number of differing/missing files.
Result<int> DiffTree(os::UnixEnv& env, const std::string& a, const std::string& b);
Result<int> DiffFile(os::UnixEnv& env, const std::string& a, const std::string& b);
// gcc: compile every .c under dir, writing .o files beside the sources.
Status GccBuild(os::UnixEnv& env, const std::string& dir);
// rm -r of a subtree (or one file).
Status RmTree(os::UnixEnv& env, const std::string& path);
// Delete only files matching an extension (rm *.o).
Status RmByExt(os::UnixEnv& env, const std::string& dir, const std::string& ext);
// wc over one file; returns line count.
Result<uint64_t> Wc(os::UnixEnv& env, const std::string& path);
// grep pattern file; returns match count.
Result<uint64_t> Grep(os::UnixEnv& env, const std::string& pattern, const std::string& path);
// cksum over a set of files, `rounds` times (CPU-heavy on cached data).
Result<uint64_t> Cksum(os::UnixEnv& env, const std::string& dir, int rounds);
// Travelling-salesman (nearest-neighbour + 2-opt passes); pure CPU.
Result<double> Tsp(os::UnixEnv& env, int ncities, int iterations, uint64_t seed);
// Successive over-relaxation on an n x n grid; pure CPU.
Result<double> Sor(os::UnixEnv& env, int n, int iterations);

// Per-byte compile cost for the gcc model (parse+optimize+emit on a 200-MHz PPro
// compiles a few thousand lines/s — roughly 300 cycles per source byte).
constexpr double kCompileCyclesPerByte = 900.0;

}  // namespace exo::apps

#endif  // EXO_APPS_UNIX_APPS_H_
