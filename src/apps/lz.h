// LZSS compressor/decompressor used by the gzip/gunzip workload programs.
//
// A real, deterministic, self-inverse byte-oriented LZ: greedy longest-match over a
// 32-KB window, emitted as flagged tokens. Repetitive C source compresses roughly
// 3:1, matching the paper's lcc archive (1.1 MB compressed). Blocks that do not
// compress are stored raw, so binaries never expand.
#ifndef EXO_APPS_LZ_H_
#define EXO_APPS_LZ_H_

#include <cstdint>
#include <span>
#include <vector>

namespace exo::apps {

std::vector<uint8_t> LzCompress(std::span<const uint8_t> input);
// Returns empty on malformed input (and sets *ok=false if provided).
std::vector<uint8_t> LzDecompress(std::span<const uint8_t> input, bool* ok = nullptr);

// CPU cost of (de)compression, cycles per input byte (compression searches matches).
constexpr double kLzCompressCyclesPerByte = 60.0;
constexpr double kLzDecompressCyclesPerByte = 10.0;

}  // namespace exo::apps

#endif  // EXO_APPS_LZ_H_
