// XN: the in-kernel stable-storage protection system (Sec. 4).
//
// XN determines, as efficiently as possible, the access rights of a principal to a
// disk block — without understanding any file system's metadata layout. LibFSes
// install *templates* (one per on-disk structure type) whose UDFs translate metadata
// into a form the kernel can check:
//
//   Alloc:  XN runs owns-udf on the metadata before and after the proposed byte-level
//           modification and requires the ownership delta to equal exactly the
//           requested blocks, which must be free (Sec. 4.1). acl-uf must approve.
//   Dealloc: symmetric; blocks whose pointers are still on disk go to a will-free
//           list until the parent's disk image drops them (Sec. 4.4).
//   Write:  refused for tainted blocks reachable from a persistent root — a block is
//           tainted while it points (directly or transitively) to uninitialized
//           metadata (rule 2 of Ganger & Patt, Sec. 4.3.2). Temporary file systems
//           and unattached subtrees are exempt. Any process may flush dirty blocks
//           (daemon support, Sec. 4.3.3) — flushing needs no write permission.
//   Read:   two-stage "read and insert": the parent's owns-udf proves ownership, the
//           acl-uf authorizes, entries enter the buffer-cache registry, the disk
//           request is issued (Sec. 4.4).
//
// Crash recovery rebuilds the free map by logically traversing all persistent roots
// with owns-udfs; unreachable blocks become free (Sec. 4.4).
//
// Metadata blocks can never be mapped read/write by applications; every metadata
// mutation flows through Alloc/Dealloc/Modify so XN's checks cannot be bypassed.
#ifndef EXO_XN_XN_H_
#define EXO_XN_XN_H_

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <span>
#include <string>
#include <vector>

#include "hw/machine.h"
#include "sim/status.h"
#include "xn/registry.h"
#include "xn/types.h"

namespace exo::xn {

struct RootInfo {
  std::string name;
  hw::BlockId block = hw::kInvalidBlock;
  TemplateId tmpl = kInvalidTemplate;
  bool temporary = false;  // temporary file systems skip all ordering rules
};

struct XnStats {
  uint64_t udf_runs = 0;
  uint64_t ops = 0;
  uint64_t taint_rejections = 0;
  uint64_t will_free_deferrals = 0;
  uint64_t corrupt_detections = 0;  // reads/scans that caught bad media
  uint64_t repairs = 0;             // quarantined blocks rewritten from a clean copy
};

class Xn {
 public:
  Xn(hw::Machine* machine, hw::Disk* disk);

  Xn(const Xn&) = delete;
  Xn& operator=(const Xn&) = delete;

  // ---- Lifecycle ----

  // Initializes an empty XN disk: superblock, empty catalogues, free map.
  void Format();
  // Loads catalogues. If the disk was not cleanly detached, reconstructs the free
  // map by traversing all persistent roots (recovery GC, Sec. 4.4).
  [[nodiscard]] Status Attach();
  // Flushes the free map and catalogues; marks the disk clean.
  void Detach();
  // Simulated power loss: outstanding disk I/O is abandoned, all volatile state
  // (registry, taint tracking, will-free list, free map) is dropped.
  void Crash();

  bool attached() const { return attached_; }
  bool recovered_after_crash() const { return recovered_; }

  // ---- Templates (type catalogue) ----

  // Verifies the UDFs (owns-udf must pass the deterministic policy) and persists the
  // template. Once installed a template is immutable (Sec. 4.1).
  [[nodiscard]] Result<TemplateId> InstallTemplate(const Template& t);
  const Template* FindTemplate(TemplateId id) const;
  [[nodiscard]] Result<TemplateId> LookupTemplate(const std::string& name) const;

  // ---- Roots (root catalogue) ----

  // Allocates a free block as the root of a new tree and persists the entry.
  [[nodiscard]] Result<RootInfo> RegisterRoot(const std::string& name, TemplateId tmpl, bool temporary);
  [[nodiscard]] Result<RootInfo> LookupRoot(const std::string& name) const;
  [[nodiscard]] Status UnregisterRoot(const std::string& name);

  // ---- Buffer cache registry ----

  const Registry& registry() const { return registry_; }

  // Loads a root block into the registry (reads from disk unless newly created).
  [[nodiscard]] Status LoadRoot(const std::string& name, hw::FrameId frame, const Caps& creds,
                  std::function<void(Status)> done);

  // Stage 1+2 combined read: prove ownership via the parent's owns-udf, authorize via
  // acl-uf, install registry entries, and issue the disk read into `frames`.
  // Blocks already resident complete immediately (no disk traffic).
  [[nodiscard]] Status ReadAndInsert(hw::BlockId parent, std::span<const hw::BlockId> blocks,
                       std::span<const hw::FrameId> frames, const Caps& creds,
                       std::function<void(Status)> done);

  // Direct install of an in-core copy; requires write access via the parent's acl-uf
  // (prevents installing bogus copies of blocks one cannot write, Sec. 4.3.3).
  [[nodiscard]] Status InsertMapping(hw::BlockId block, hw::BlockId parent, hw::FrameId frame,
                       bool dirty, const Caps& creds);

  // Speculative read before the parent is known; the entry is typed "unknown" and
  // unusable until BindToParent succeeds (Sec. 4.4, raw read).
  [[nodiscard]] Status RawRead(hw::BlockId block, hw::FrameId frame, std::function<void(Status)> done);
  [[nodiscard]] Status BindToParent(hw::BlockId parent, hw::BlockId block, const Caps& creds);

  // Registry-entry locking for atomic multi-step metadata updates (Sec. 4.3.1).
  [[nodiscard]] Status Lock(hw::BlockId block, xok::EnvId owner);
  [[nodiscard]] Status Unlock(hw::BlockId block, xok::EnvId owner);
  [[nodiscard]] Status Pin(hw::BlockId block);
  [[nodiscard]] Status Unpin(hw::BlockId block);

  // Drops a clean mapping (the application reclaims its frame).
  [[nodiscard]] Status RemoveMapping(hw::BlockId block);
  // Default recycling policy: drop the LRU unused buffer and return its frame.
  [[nodiscard]] Result<hw::FrameId> RecycleOldest();

  // ---- Guarded metadata operations ----

  [[nodiscard]] Status Alloc(hw::BlockId meta, const Mods& mods, std::span<const udf::Extent> to_alloc,
               const Caps& creds);
  [[nodiscard]] Status Dealloc(hw::BlockId meta, const Mods& mods, std::span<const udf::Extent> to_free,
                 const Caps& creds);
  // Ownership-preserving metadata update (mtimes, sizes, names, ...).
  [[nodiscard]] Status Modify(hw::BlockId meta, const Mods& mods, const Caps& creds);

  // Flushes dirty blocks. Validates every block first (tainted-and-reachable fails
  // the whole call with kTainted); then submits one merged-friendly request batch.
  // Needs no write permission: daemons may flush anything (Sec. 4.3.3).
  [[nodiscard]] Status Write(std::span<const hw::BlockId> blocks, std::function<void(Status)> done);

  // Reads the current bytes of a cached block (metadata inspection path for libFSes;
  // metadata frames must not be written directly, but reading is harmless).
  [[nodiscard]] Result<std::vector<uint8_t>> ReadCached(hw::BlockId block, const Caps& creds);

  // ---- Exposed state (no syscall cost to read) ----

  bool IsAllocated(hw::BlockId b) const;
  uint32_t FreeBlockCount() const;
  hw::BlockId FirstDataBlock() const { return first_data_block_; }
  uint32_t NumBlocks() const;
  // Scans for a run of `count` free blocks at or after `hint` (libFSes control
  // layout by choosing where to look, Sec. 4.4 "Allocate").
  [[nodiscard]] Result<hw::BlockId> FindFreeRun(hw::BlockId hint, uint32_t count) const;
  bool IsTaintedBlock(hw::BlockId b) const { return uninit_.count(b) != 0; }

  const XnStats& stats() const { return stats_; }
  hw::Machine& machine() { return *machine_; }

  // ---- End-to-end integrity (armed iff the disk's sidecar is enabled) ----
  //
  // Detection happens on the read path and in scans — never write-verify, so
  // injected faults stay live until something *looks*. A block that fails its
  // check is quarantined: reads of it return kCorrupted until it is repaired
  // from a clean in-core copy or rewritten. See docs/ROBUSTNESS.md.

  // Bounded fsck-style scan of the first `max_blocks` blocks against the
  // integrity sidecar; quarantines every failure. Recovery runs this over the
  // whole disk before trusting traversal, so TraverseForRecovery never parses
  // (follows pointers out of) a detectably corrupt block.
  struct IntegrityReport {
    uint64_t scanned = 0;
    uint64_t quarantined = 0;
    uint64_t unreadable = 0;  // subset of quarantined: latent sector errors
  };
  IntegrityReport VerifyDiskIntegrity(uint64_t max_blocks = UINT64_MAX);

  bool IsQuarantined(hw::BlockId b) const { return quarantined_.count(b) != 0; }
  size_t QuarantineCount() const { return quarantined_.size(); }

  // Read-repair: if a clean (non-dirty) resident registry copy of `b` exists,
  // rewrites the media from it, restamps, and lifts the quarantine. Returns
  // kCorrupted when no trustworthy copy is available (the block stays
  // quarantined; the owning libFS must rewrite or discard it).
  Status TryRepair(hw::BlockId b);

  // Background scrubber: checks up to `budget` allocated blocks per step
  // (cursor walk, wraps around), repairing or quarantining what it finds.
  // Returns blocks scanned. Host-side oracle: charges no simulated time.
  uint32_t ScrubStep(uint32_t budget);
  // Schedules `steps` scrub steps, one every `interval` cycles, each skipped
  // while the disk is busy (idle priority). Bounded so RunUntilIdle terminates.
  void StartScrubber(sim::Cycles interval, uint32_t budget, uint32_t steps);

  // Frame-release hook. XN holds its registry frames by raw refcount; when the
  // exokernel proper is present, it wires this to XokKernel::FrameUnref so guard
  // and ledger bookkeeping retire with the last reference. Unwired (standalone
  // XN tests), releases fall back to the raw PhysMem refcount.
  void SetFrameRelease(std::function<void(hw::FrameId)> release) {
    frame_release_ = std::move(release);
  }
  void ReleaseFrame(hw::FrameId f) {
    if (frame_release_) {
      frame_release_(f);
    } else {
      machine_->mem().Unref(f);
    }
  }

 private:
  using OwnsSet = std::map<hw::BlockId, TemplateId>;  // block -> template

  void ChargeOp(const char* name);
  [[nodiscard]] Result<OwnsSet> RunOwns(const Template& t, std::span<const uint8_t> image);
  bool RunAcl(const Template& t, std::span<const uint8_t> image,
              const std::vector<uint8_t>& aux, const Caps& creds);
  std::span<const uint8_t> FrameBytes(hw::FrameId f) const;
  std::span<uint8_t> FrameBytesMutable(hw::FrameId f);

  // Shared validation for Alloc/Dealloc/Modify: runs owns-udf before and after the
  // proposed modification on a scratch copy, requires the ownership delta to equal
  // exactly (require_added, require_removed), runs acl-uf, and only then applies the
  // mods to the cached frame and marks it dirty. Nothing is mutated on failure.
  [[nodiscard]] Status GuardedModify(hw::BlockId meta, const Mods& mods, const Caps& creds,
                       const OwnsSet& require_added, const OwnsSet& require_removed);

  bool ReachesPersistentRoot(hw::BlockId b) const;
  bool IsTaintedForWrite(hw::BlockId b, std::set<hw::BlockId>* visiting);
  void OnWriteComplete(hw::BlockId b, Status s);
  void MarkAllocated(hw::BlockId b, bool allocated);

  bool integrity_armed() const { return disk_->integrity_enabled(); }
  // Media-tag verdict for a freshly read (or scanned) block, folding in the
  // volatile write expectation that catches in-session lost writes the
  // self-consistent tag cannot. Quarantines and returns kCorrupted on failure.
  Status CheckReadIntegrity(hw::BlockId b);
  void Quarantine(hw::BlockId b, const char* why);
  // Restamps a system block the kernel just rewrote via RawBlock (superblock,
  // free map, catalogues) and clears any stale integrity verdict on it.
  void RestampSystemBlock(hw::BlockId b);

  void WriteSuperblock(bool clean);
  void PersistCatalogues();
  void LoadCatalogues();
  void RecoverFreeMap();
  void TraverseForRecovery(hw::BlockId block, TemplateId tmpl, std::set<hw::BlockId>* seen);

  hw::Machine* machine_;
  hw::Disk* disk_;
  Registry registry_;
  std::function<void(hw::FrameId)> frame_release_;

  std::map<TemplateId, Template> templates_;
  TemplateId next_template_ = 1;  // 0 is the raw-data pseudo template
  std::map<std::string, RootInfo> roots_;

  std::vector<uint8_t> free_map_;  // 1 = free
  uint32_t free_count_ = 0;
  hw::BlockId first_data_block_ = 0;

  // Ordering state (volatile; rebuilt on recovery).
  std::set<hw::BlockId> uninit_;                       // allocated metadata, never written
  std::map<hw::BlockId, hw::BlockId> parent_of_;       // child -> allocating metadata
  std::map<hw::BlockId, OwnsSet> on_disk_owns_;        // metadata -> owns set on disk
  std::map<hw::BlockId, uint32_t> will_free_;          // block -> on-disk pointer count

  // Integrity state. quarantined_ and expected_crc_ are volatile (a crash
  // forgets them; recovery re-derives quarantine from the persistent sidecar).
  // expected_crc_ records the CRC of the last *acked* write per block, which is
  // the only way to catch an in-session lost write whose stale tag is
  // self-consistent.
  std::set<hw::BlockId> quarantined_;
  std::map<hw::BlockId, uint32_t> expected_crc_;
  hw::BlockId scrub_cursor_ = 0;
  std::shared_ptr<int> scrub_token_;  // liveness guard for scheduled scrub steps

  bool attached_ = false;
  bool recovered_ = false;
  uint64_t lru_clock_ = 0;
  XnStats stats_;
  uint64_t* syscall_counter_ = nullptr;
  trace::Tracer* tracer_ = nullptr;  // the machine's tracer (never null)
  uint32_t trace_track_ = 0;
  sim::Counters::Slot* corrupted_counter_ = nullptr;
  sim::Counters::Slot* repaired_counter_ = nullptr;
  sim::Counters::Slot* scrub_scanned_counter_ = nullptr;
  sim::Counters::Slot* scrub_repaired_counter_ = nullptr;
  sim::Counters::Slot* scrub_quarantined_counter_ = nullptr;
};

}  // namespace exo::xn

#endif  // EXO_XN_XN_H_
