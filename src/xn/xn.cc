#include "xn/xn.h"

#include <algorithm>
#include <cstring>

#include "udf/verifier.h"
#include "udf/vm.h"

namespace exo::xn {

namespace {

constexpr uint32_t kMagic = 0x584e2197;  // "XN"
constexpr uint32_t kTemplBlocks = 8;
constexpr uint32_t kRootBlocks = 2;

// Simple append/read cursor over a byte buffer for catalogue serialization.
class Cursor {
 public:
  explicit Cursor(std::vector<uint8_t>* out) : out_(out) {}
  explicit Cursor(std::span<const uint8_t> in) : in_(in) {}

  void PutU8(uint8_t v) { out_->push_back(v); }
  void PutU32(uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      out_->push_back(static_cast<uint8_t>((v >> (8 * i)) & 0xff));
    }
  }
  void PutI32(int32_t v) { PutU32(static_cast<uint32_t>(v)); }
  void PutString(const std::string& s) {
    PutU32(static_cast<uint32_t>(s.size()));
    out_->insert(out_->end(), s.begin(), s.end());
  }
  void PutProgram(const udf::Program& p) {
    PutU32(static_cast<uint32_t>(p.size()));
    for (const udf::Insn& in : p) {
      PutU8(static_cast<uint8_t>(in.op));
      PutU8(in.rd);
      PutU8(in.rs);
      PutU8(in.rt);
      PutI32(in.imm);
    }
  }

  bool ok() const { return ok_; }
  uint8_t GetU8() { return ok_ && pos_ < in_.size() ? in_[pos_++] : (ok_ = false, 0); }
  uint32_t GetU32() {
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(GetU8()) << (8 * i);
    }
    return v;
  }
  int32_t GetI32() { return static_cast<int32_t>(GetU32()); }
  std::string GetString() {
    uint32_t n = GetU32();
    if (!ok_ || pos_ + n > in_.size()) {
      ok_ = false;
      return {};
    }
    std::string s(in_.begin() + static_cast<long>(pos_), in_.begin() + static_cast<long>(pos_ + n));
    pos_ += n;
    return s;
  }
  udf::Program GetProgram() {
    udf::Program p;
    uint32_t n = GetU32();
    if (n > udf::kMaxProgramLength) {
      ok_ = false;
      return p;
    }
    for (uint32_t i = 0; i < n && ok_; ++i) {
      udf::Insn in;
      in.op = static_cast<udf::Op>(GetU8());
      in.rd = GetU8();
      in.rs = GetU8();
      in.rt = GetU8();
      in.imm = GetI32();
      p.push_back(in);
    }
    return p;
  }

 private:
  std::vector<uint8_t>* out_ = nullptr;
  std::span<const uint8_t> in_;
  size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace

Xn::Xn(hw::Machine* machine, hw::Disk* disk) : machine_(machine), disk_(disk) {
  syscall_counter_ = machine_->counters().Handle("xok.syscalls");
  tracer_ = &machine_->tracer();
  trace_track_ = tracer_->NewTrack("xn");
  corrupted_counter_ = machine_->counters().Handle("disk.corrupted");
  repaired_counter_ = machine_->counters().Handle("disk.repaired");
  scrub_scanned_counter_ = machine_->counters().Handle("scrub.blocks_scanned");
  scrub_repaired_counter_ = machine_->counters().Handle("scrub.repaired");
  scrub_quarantined_counter_ = machine_->counters().Handle("scrub.quarantined");
}

void Xn::ChargeOp(const char* name) {
  const auto& c = machine_->cost();
  machine_->Charge(c.trap_round_trip + c.xok_syscall_check);
  ++*syscall_counter_;
  ++stats_.ops;
  if (tracer_->enabled(trace::Category::kXn)) {
    tracer_->Instant(trace::Category::kXn, trace_track_, name, machine_->engine().now());
  }
}

std::span<const uint8_t> Xn::FrameBytes(hw::FrameId f) const {
  return machine_->mem().Data(f);
}
std::span<uint8_t> Xn::FrameBytesMutable(hw::FrameId f) { return machine_->mem().Data(f); }

// ---- UDF invocation ----

Result<Xn::OwnsSet> Xn::RunOwns(const Template& t, std::span<const uint8_t> image) {
  udf::RunInput in;
  in.buffers[udf::kBufMeta] = image;
  udf::RunOutput out = udf::Run(t.owns_udf, in);
  machine_->Charge(machine_->cost().udf_setup +
                   out.insns * machine_->cost().downloaded_insn);
  ++stats_.udf_runs;
  if (!out.ok) {
    return Status::kBadMetadata;
  }
  OwnsSet set;
  for (const udf::Extent& e : out.emitted) {
    for (uint32_t i = 0; i < e.count; ++i) {
      hw::BlockId b = e.start + i;
      auto [it, inserted] = set.emplace(b, e.type);
      if (!inserted) {
        return Status::kBadMetadata;  // a block claimed twice is malformed metadata
      }
    }
  }
  return set;
}

bool Xn::RunAcl(const Template& t, std::span<const uint8_t> image,
                const std::vector<uint8_t>& aux, const Caps& creds) {
  if (t.acl_uf.empty()) {
    return true;  // template imposes no extra access control
  }
  auto cred_bytes = SerializeCaps(creds);
  udf::RunInput in;
  in.buffers[udf::kBufMeta] = image;
  in.buffers[udf::kBufAux] = aux;
  in.buffers[udf::kBufCred] = cred_bytes;
  in.time = [this] { return machine_->engine().now(); };
  udf::RunOutput out = udf::Run(t.acl_uf, in);
  machine_->Charge(machine_->cost().udf_setup +
                   out.insns * machine_->cost().downloaded_insn);
  ++stats_.udf_runs;
  return out.ok && out.ret != 0;
}

// ---- Lifecycle ----

void Xn::Format() {
  const uint32_t nblocks = disk_->geometry().num_blocks;
  const uint32_t fm_blocks = (nblocks / 8 + hw::kBlockSize - 1) / hw::kBlockSize;
  first_data_block_ = 1 + kTemplBlocks + kRootBlocks + fm_blocks;
  EXO_CHECK_LT(first_data_block_, nblocks);

  templates_.clear();
  roots_.clear();
  free_map_.assign(nblocks, 1);
  free_count_ = 0;
  for (hw::BlockId b = 0; b < nblocks; ++b) {
    if (b < first_data_block_) {
      free_map_[b] = 0;
    } else {
      ++free_count_;
    }
  }
  uninit_.clear();
  parent_of_.clear();
  on_disk_owns_.clear();
  will_free_.clear();
  quarantined_.clear();
  expected_crc_.clear();

  PersistCatalogues();
  WriteSuperblock(/*clean=*/true);
  attached_ = false;
  recovered_ = false;
}

void Xn::WriteSuperblock(bool clean) {
  std::vector<uint8_t> sb;
  Cursor c(&sb);
  c.PutU32(kMagic);
  c.PutU32(clean ? 1 : 0);
  c.PutU32(disk_->geometry().num_blocks);
  c.PutU32(first_data_block_);
  // Persist the free map alongside the clean flag (only trusted on clean detach).
  auto block = disk_->RawBlock(0);
  std::memset(block.data(), 0, block.size());
  EXO_CHECK_LE(sb.size(), block.size());
  std::memcpy(block.data(), sb.data(), sb.size());
  RestampSystemBlock(0);  // kernel-internal raw write: stamp the sidecar by hand

  const uint32_t fm_start = 1 + kTemplBlocks + kRootBlocks;
  const uint32_t nblocks = disk_->geometry().num_blocks;
  for (uint32_t i = 0; i * hw::kBlockSize * 8 < nblocks; ++i) {
    auto fm = disk_->RawBlock(fm_start + i);
    std::memset(fm.data(), 0, fm.size());
    for (uint32_t j = 0; j < hw::kBlockSize * 8; ++j) {
      uint32_t b = i * hw::kBlockSize * 8 + j;
      if (b >= nblocks) {
        break;
      }
      if (!free_map_.empty() && free_map_[b]) {
        fm[j / 8] = static_cast<uint8_t>(fm[j / 8] | (1u << (j % 8)));
      }
    }
    RestampSystemBlock(fm_start + i);
  }
}

void Xn::PersistCatalogues() {
  // Catalogue updates are rare setup operations (template installation, root
  // registration); they are written through synchronously and charged a flat cost.
  machine_->Charge(machine_->cost().FromMicros(500));

  std::vector<uint8_t> tbuf;
  Cursor tc(&tbuf);
  tc.PutU32(static_cast<uint32_t>(templates_.size()));
  for (const auto& [id, t] : templates_) {
    tc.PutU32(id);
    tc.PutString(t.name);
    tc.PutU8(t.is_metadata ? 1 : 0);
    tc.PutProgram(t.owns_udf);
    tc.PutProgram(t.acl_uf);
    tc.PutProgram(t.size_uf);
  }
  EXO_CHECK_LE(tbuf.size(), static_cast<size_t>(kTemplBlocks) * hw::kBlockSize);
  for (uint32_t i = 0; i < kTemplBlocks; ++i) {
    auto block = disk_->RawBlock(1 + i);
    std::memset(block.data(), 0, block.size());
    size_t off = static_cast<size_t>(i) * hw::kBlockSize;
    if (off < tbuf.size()) {
      std::memcpy(block.data(), tbuf.data() + off, std::min<size_t>(hw::kBlockSize, tbuf.size() - off));
    }
    RestampSystemBlock(1 + i);
  }

  std::vector<uint8_t> rbuf;
  Cursor rc(&rbuf);
  uint32_t persistent = 0;
  for (const auto& [name, r] : roots_) {
    persistent += r.temporary ? 0 : 1;
  }
  rc.PutU32(persistent);
  for (const auto& [name, r] : roots_) {
    if (r.temporary) {
      continue;  // temporary file systems do not survive reboots (Sec. 4.3.2)
    }
    rc.PutString(r.name);
    rc.PutU32(r.block);
    rc.PutU32(r.tmpl);
  }
  EXO_CHECK_LE(rbuf.size(), static_cast<size_t>(kRootBlocks) * hw::kBlockSize);
  for (uint32_t i = 0; i < kRootBlocks; ++i) {
    auto block = disk_->RawBlock(1 + kTemplBlocks + i);
    std::memset(block.data(), 0, block.size());
    size_t off = static_cast<size_t>(i) * hw::kBlockSize;
    if (off < rbuf.size()) {
      std::memcpy(block.data(), rbuf.data() + off, std::min<size_t>(hw::kBlockSize, rbuf.size() - off));
    }
    RestampSystemBlock(1 + kTemplBlocks + i);
  }
}

void Xn::LoadCatalogues() {
  std::vector<uint8_t> tbuf(static_cast<size_t>(kTemplBlocks) * hw::kBlockSize);
  for (uint32_t i = 0; i < kTemplBlocks; ++i) {
    auto block = disk_->RawBlock(1 + i);
    std::memcpy(tbuf.data() + static_cast<size_t>(i) * hw::kBlockSize, block.data(),
                hw::kBlockSize);
  }
  Cursor tc{std::span<const uint8_t>(tbuf)};
  templates_.clear();
  next_template_ = 1;
  uint32_t tn = tc.GetU32();
  for (uint32_t i = 0; i < tn && tc.ok(); ++i) {
    Template t;
    t.id = tc.GetU32();
    t.name = tc.GetString();
    t.is_metadata = tc.GetU8() != 0;
    t.owns_udf = tc.GetProgram();
    t.acl_uf = tc.GetProgram();
    t.size_uf = tc.GetProgram();
    if (tc.ok()) {
      next_template_ = std::max(next_template_, t.id + 1);
      templates_[t.id] = std::move(t);
    }
  }

  std::vector<uint8_t> rbuf(static_cast<size_t>(kRootBlocks) * hw::kBlockSize);
  for (uint32_t i = 0; i < kRootBlocks; ++i) {
    auto block = disk_->RawBlock(1 + kTemplBlocks + i);
    std::memcpy(rbuf.data() + static_cast<size_t>(i) * hw::kBlockSize, block.data(),
                hw::kBlockSize);
  }
  Cursor rc{std::span<const uint8_t>(rbuf)};
  roots_.clear();
  uint32_t rn = rc.GetU32();
  for (uint32_t i = 0; i < rn && rc.ok(); ++i) {
    RootInfo r;
    r.name = rc.GetString();
    r.block = rc.GetU32();
    r.tmpl = rc.GetU32();
    r.temporary = false;
    if (rc.ok()) {
      roots_[r.name] = std::move(r);
    }
  }
}

Status Xn::Attach() {
  // Armed: the superblock and catalogues are parsed straight off the media with
  // no registry read path in front of them, so verify their tags by hand before
  // trusting a single field. A corrupt system area is unrecoverable here —
  // surface it rather than parse garbage.
  if (integrity_armed() && disk_->CheckBlock(0) != hw::BlockIntegrity::kOk) {
    Quarantine(0, "superblock");
    return Status::kCorrupted;
  }
  auto sb = disk_->RawBlock(0);
  Cursor c{std::span<const uint8_t>(sb)};
  if (c.GetU32() != kMagic) {
    return Status::kBadMetadata;
  }
  const bool clean = c.GetU32() == 1;
  const uint32_t nblocks = c.GetU32();
  first_data_block_ = c.GetU32();
  if (nblocks != disk_->geometry().num_blocks) {
    return Status::kBadMetadata;
  }
  if (integrity_armed()) {
    for (uint32_t b = 1; b < 1 + kTemplBlocks + kRootBlocks; ++b) {
      if (disk_->CheckBlock(b) != hw::BlockIntegrity::kOk) {
        Quarantine(b, "catalogue");
        return Status::kCorrupted;
      }
    }
  }

  LoadCatalogues();
  uninit_.clear();
  parent_of_.clear();
  on_disk_owns_.clear();
  will_free_.clear();

  // The persisted free map is only trusted on a clean detach AND intact media;
  // a corrupt free-map block demotes the attach to a recovery traversal, which
  // rebuilds the map without reading it.
  const uint32_t fm_start = 1 + kTemplBlocks + kRootBlocks;
  bool fm_ok = true;
  if (integrity_armed() && clean) {
    for (uint32_t b = fm_start; b < first_data_block_; ++b) {
      if (disk_->CheckBlock(b) != hw::BlockIntegrity::kOk) {
        fm_ok = false;
        break;
      }
    }
  }

  if (clean && fm_ok) {
    // Trust the persisted free map.
    free_map_.assign(nblocks, 0);
    free_count_ = 0;
    for (uint32_t b = 0; b < nblocks; ++b) {
      auto fm = disk_->RawBlock(fm_start + b / (hw::kBlockSize * 8));
      uint32_t j = b % (hw::kBlockSize * 8);
      if ((fm[j / 8] >> (j % 8)) & 1) {
        free_map_[b] = 1;
        ++free_count_;
      }
    }
    recovered_ = false;
  } else {
    // Bounded fsck pass first: every tag-invalid block lands in quarantine, so
    // the traversal below skips it instead of parsing corrupt pointers.
    if (integrity_armed()) {
      VerifyDiskIntegrity();
    }
    RecoverFreeMap();
    recovered_ = true;
  }

  WriteSuperblock(/*clean=*/false);  // mark mounted-dirty until Detach
  attached_ = true;
  return Status::kOk;
}

void Xn::Detach() {
  WriteSuperblock(/*clean=*/true);
  attached_ = false;
}

void Xn::Crash() {
  // Outstanding queued disk requests are lost with power; requests already "in the
  // platters" (submitted DMA) are modeled as lost too — the registry that would
  // receive the completions is gone.
  registry_ = Registry{};
  uninit_.clear();
  parent_of_.clear();
  on_disk_owns_.clear();
  will_free_.clear();
  free_map_.clear();
  free_count_ = 0;
  // Volatile integrity state dies with the kernel; recovery re-derives
  // quarantine from the persistent sidecar (VerifyDiskIntegrity in Attach).
  quarantined_.clear();
  expected_crc_.clear();
  attached_ = false;
}

void Xn::RecoverFreeMap() {
  const bool tracing = tracer_->enabled(trace::Category::kXn);
  if (tracing) {
    tracer_->Begin(trace::Category::kXn, trace_track_, "recovery",
                   machine_->engine().now());
  }
  const uint32_t nblocks = disk_->geometry().num_blocks;
  free_map_.assign(nblocks, 1);
  for (hw::BlockId b = 0; b < first_data_block_; ++b) {
    free_map_[b] = 0;
  }
  std::set<hw::BlockId> seen;
  for (const auto& [name, r] : roots_) {
    TraverseForRecovery(r.block, r.tmpl, &seen);
  }
  free_count_ = 0;
  for (hw::BlockId b = first_data_block_; b < nblocks; ++b) {
    free_count_ += free_map_[b];
  }
  machine_->counters().Add("xn.recovery_blocks_scanned", seen.size());
  if (tracing) {
    tracer_->End(trace::Category::kXn, trace_track_, "recovery",
                 machine_->engine().now(), seen.size());
  }
}

void Xn::TraverseForRecovery(hw::BlockId block, TemplateId tmpl,
                             std::set<hw::BlockId>* seen) {
  if (block >= disk_->geometry().num_blocks || !seen->insert(block).second) {
    return;
  }
  free_map_[block] = 0;
  const Template* t = FindTemplate(tmpl);
  if (t == nullptr || !t->is_metadata) {
    return;
  }
  // Never parse a detectably corrupt block: its pointers are garbage. The block
  // itself stays allocated (it is referenced) and quarantined; its unreached
  // children simply stay free. VerifyDiskIntegrity pre-populated quarantine,
  // but re-check the tag in case this path runs without the full scan.
  if (integrity_armed() &&
      (quarantined_.count(block) != 0 ||
       disk_->CheckBlock(block) != hw::BlockIntegrity::kOk)) {
    Quarantine(block, "recovery");
    return;
  }
  // Recovery reads disk images directly; charge a media read per metadata block.
  machine_->Charge(machine_->cost().FromMicros(512));
  auto owns = RunOwns(*t, disk_->RawBlock(block));
  if (!owns.ok()) {
    return;  // malformed on-disk metadata: its subtree stays unreferenced (freed)
  }
  on_disk_owns_[block] = *owns;
  for (const auto& [child, child_tmpl] : *owns) {
    parent_of_[child] = block;
    TraverseForRecovery(child, child_tmpl, seen);
  }
}

// ---- Templates ----

Result<TemplateId> Xn::InstallTemplate(const Template& t) {
  ChargeOp("xn_install_template");
  if (t.name.empty()) {
    return Status::kInvalidArgument;
  }
  for (const auto& [id, existing] : templates_) {
    if (existing.name == t.name) {
      return Status::kAlreadyExists;  // templates are immutable once specified
    }
  }
  // owns-udf must be deterministic; acl-uf and size-uf may read the clock (Sec. 4.1).
  if (!udf::Verify(t.owns_udf, udf::Policy::kDeterministic).ok) {
    return Status::kVerifierReject;
  }
  if (!t.acl_uf.empty() && !udf::Verify(t.acl_uf, udf::Policy::kAny).ok) {
    return Status::kVerifierReject;
  }
  if (!t.size_uf.empty() && !udf::Verify(t.size_uf, udf::Policy::kAny).ok) {
    return Status::kVerifierReject;
  }
  Template stored = t;
  stored.id = next_template_++;
  templates_[stored.id] = std::move(stored);
  PersistCatalogues();
  return next_template_ - 1;
}

const Template* Xn::FindTemplate(TemplateId id) const {
  auto it = templates_.find(id);
  return it == templates_.end() ? nullptr : &it->second;
}

Result<TemplateId> Xn::LookupTemplate(const std::string& name) const {
  for (const auto& [id, t] : templates_) {
    if (t.name == name) {
      return id;
    }
  }
  return Status::kNotFound;
}

// ---- Roots ----

Result<RootInfo> Xn::RegisterRoot(const std::string& name, TemplateId tmpl, bool temporary) {
  ChargeOp("xn_register_root");
  if (roots_.count(name) != 0) {
    return Status::kAlreadyExists;
  }
  const Template* t = FindTemplate(tmpl);
  if (t == nullptr) {
    return Status::kNotFound;
  }
  auto block = FindFreeRun(first_data_block_, 1);
  if (!block.ok()) {
    return Status::kOutOfResources;
  }
  MarkAllocated(*block, true);
  RootInfo r{name, *block, tmpl, temporary};
  roots_[name] = r;
  if (t->is_metadata && !temporary) {
    uninit_.insert(*block);
  }
  PersistCatalogues();
  return r;
}

Result<RootInfo> Xn::LookupRoot(const std::string& name) const {
  auto it = roots_.find(name);
  if (it == roots_.end()) {
    return Status::kNotFound;
  }
  return it->second;
}

Status Xn::UnregisterRoot(const std::string& name) {
  ChargeOp("xn_unregister_root");
  auto it = roots_.find(name);
  if (it == roots_.end()) {
    return Status::kNotFound;
  }
  roots_.erase(it);
  PersistCatalogues();
  return Status::kOk;
}

// ---- Registry operations ----

Status Xn::LoadRoot(const std::string& name, hw::FrameId frame, const Caps& creds,
                    std::function<void(Status)> done) {
  ChargeOp("xn_load_root");
  auto it = roots_.find(name);
  if (it == roots_.end()) {
    return Status::kNotFound;
  }
  const RootInfo& r = it->second;
  if (const RegistryEntry* e = registry_.Lookup(r.block)) {
    if (e->state == BufState::kInTransit) {
      return Status::kBusy;
    }
    if (done) {
      done(Status::kOk);
    }
    return Status::kOk;
  }

  RegistryEntry e;
  e.block = r.block;
  e.parent = hw::kInvalidBlock;
  e.tmpl = r.tmpl;
  e.frame = frame;
  e.lru_stamp = ++lru_clock_;

  if (uninit_.count(r.block) != 0) {
    // Freshly created root: nothing on disk yet; hand the libFS a zeroed buffer.
    machine_->mem().Ref(frame);
    e.state = BufState::kResident;
    e.dirty = true;
    std::memset(FrameBytesMutable(frame).data(), 0, hw::kBlockSize);
    machine_->Charge(machine_->cost().ZeroCost(hw::kBlockSize));
    registry_.Install(e);
    if (done) {
      done(Status::kOk);
    }
    return Status::kOk;
  }

  if (quarantined_.count(r.block) != 0) {
    return Status::kCorrupted;  // known-bad media: repair or rewrite it first
  }

  machine_->mem().Ref(frame);
  e.state = BufState::kInTransit;
  registry_.Install(e);
  hw::BlockId block = r.block;
  TemplateId tmpl = r.tmpl;
  disk_->Submit({.write = false,
                 .start = block,
                 .nblocks = 1,
                 .frames = {frame},
                 .done = [this, block, tmpl, done = std::move(done)](Status s) {
                   if (RegistryEntry* e = registry_.LookupMutable(block)) {
                     if (s == Status::kOk) {
                       s = CheckReadIntegrity(block);  // corrupt media reads like a failed read
                     }
                     if (s != Status::kOk) {
                       // The frame holds garbage, not the root: drop the mapping so a
                       // retry re-issues the read instead of trusting it.
                       ReleaseFrame(e->frame);
                       registry_.Remove(block);
                       if (done) {
                         done(s);
                       }
                       return;
                     }
                     e->state = BufState::kResident;
                     if (const Template* t = FindTemplate(tmpl); t != nullptr && t->is_metadata) {
                       auto owns = RunOwns(*t, FrameBytes(e->frame));
                       if (owns.ok()) {
                         on_disk_owns_[block] = *owns;
                         for (const auto& [child, ct] : *owns) {
                           parent_of_[child] = block;
                         }
                       }
                     }
                   }
                   if (done) {
                     done(s);
                   }
                 }});
  return Status::kOk;
}

Status Xn::ReadAndInsert(hw::BlockId parent, std::span<const hw::BlockId> blocks,
                         std::span<const hw::FrameId> frames, const Caps& creds,
                         std::function<void(Status)> done) {
  ChargeOp("xn_read_insert");
  if (blocks.size() != frames.size() || blocks.empty()) {
    return Status::kInvalidArgument;
  }
  const RegistryEntry* pe = registry_.Lookup(parent);
  if (pe == nullptr) {
    return Status::kNotFound;  // libFSes are responsible for loading parents first
  }
  if (pe->state != BufState::kResident) {
    return Status::kBusy;
  }
  const Template* pt = FindTemplate(pe->tmpl);
  if (pt == nullptr || !pt->is_metadata) {
    return Status::kBadMetadata;
  }
  auto owns = RunOwns(*pt, FrameBytes(pe->frame));
  if (!owns.ok()) {
    return owns.status();
  }

  // Validate every block before touching the registry.
  for (hw::BlockId b : blocks) {
    auto it = owns->find(b);
    if (it == owns->end()) {
      return Status::kPermissionDenied;  // parent does not own the block
    }
    if (!RunAcl(*pt, FrameBytes(pe->frame), SerializeAccess(AccessIntent::kReadChild, b),
                creds)) {
      return Status::kPermissionDenied;
    }
    const RegistryEntry* e = registry_.Lookup(b);
    if (e != nullptr && e->state == BufState::kInTransit) {
      return Status::kBusy;
    }
    // A quarantined block with no cached copy cannot be read — the media is
    // known bad. (With a cached copy it is served from cache below.)
    if (e == nullptr && quarantined_.count(b) != 0) {
      return Status::kCorrupted;
    }
  }

  // Install entries and build one read request per contiguous run.
  auto remaining = std::make_shared<int>(0);
  auto first_err = std::make_shared<Status>(Status::kOk);
  std::vector<hw::BlockId> to_read;
  std::vector<hw::FrameId> read_frames;
  for (size_t i = 0; i < blocks.size(); ++i) {
    hw::BlockId b = blocks[i];
    if (const RegistryEntry* e = registry_.Lookup(b); e != nullptr) {
      registry_.TouchLru(b, ++lru_clock_);
      parent_of_[b] = parent;
      continue;  // already cached; no disk traffic
    }
    RegistryEntry e;
    e.block = b;
    e.parent = parent;
    e.tmpl = owns->at(b);
    e.frame = frames[i];
    e.state = BufState::kInTransit;
    e.lru_stamp = ++lru_clock_;
    machine_->mem().Ref(frames[i]);
    registry_.Install(e);
    parent_of_[b] = parent;
    to_read.push_back(b);
    read_frames.push_back(frames[i]);
  }

  if (to_read.empty()) {
    if (done) {
      done(Status::kOk);
    }
    return Status::kOk;
  }

  // Issue contiguous runs as single requests; the disk merges further.
  size_t start = 0;
  std::vector<std::pair<size_t, size_t>> runs;
  for (size_t i = 1; i <= to_read.size(); ++i) {
    if (i == to_read.size() || to_read[i] != to_read[i - 1] + 1) {
      runs.emplace_back(start, i);
      start = i;
    }
  }
  *remaining = static_cast<int>(runs.size());
  for (auto [lo, hi] : runs) {
    std::vector<hw::FrameId> run_frames(read_frames.begin() + static_cast<long>(lo),
                                        read_frames.begin() + static_cast<long>(hi));
    std::vector<hw::BlockId> run_blocks(to_read.begin() + static_cast<long>(lo),
                                        to_read.begin() + static_cast<long>(hi));
    disk_->Submit(
        {.write = false,
         .start = to_read[lo],
         .nblocks = static_cast<uint32_t>(hi - lo),
         .frames = run_frames,
         .done = [this, run_blocks, remaining, first_err, done](Status s) {
           for (hw::BlockId b : run_blocks) {
             if (RegistryEntry* e = registry_.LookupMutable(b)) {
               Status bs = s;
               if (bs == Status::kOk) {
                 bs = CheckReadIntegrity(b);  // per-block: one rotted block poisons only itself
               }
               if (bs != Status::kOk) {
                 // Failed read: unwind the in-transit mapping entirely so the libFS
                 // can retry the same blocks.
                 ReleaseFrame(e->frame);
                 registry_.Remove(b);
                 parent_of_.erase(b);
                 if (bs != s) {
                   *first_err = bs;  // corruption verdict outranks the transport status
                 }
                 continue;
               }
               e->state = BufState::kResident;
               const Template* t = FindTemplate(e->tmpl);
               if (t != nullptr && t->is_metadata) {
                 auto owns = RunOwns(*t, FrameBytes(e->frame));
                 if (owns.ok()) {
                   on_disk_owns_[b] = *owns;
                 }
               }
             }
           }
           if (s != Status::kOk) {
             *first_err = s;
           }
           if (--*remaining == 0 && done) {
             done(*first_err);
           }
         }});
  }
  return Status::kOk;
}

Status Xn::InsertMapping(hw::BlockId block, hw::BlockId parent, hw::FrameId frame,
                         bool dirty, const Caps& creds) {
  ChargeOp("xn_insert_mapping");
  const RegistryEntry* pe = registry_.Lookup(parent);
  if (pe == nullptr) {
    return Status::kNotFound;
  }
  if (pe->state != BufState::kResident) {
    return Status::kBusy;
  }
  const Template* pt = FindTemplate(pe->tmpl);
  if (pt == nullptr || !pt->is_metadata) {
    return Status::kBadMetadata;
  }
  auto owns = RunOwns(*pt, FrameBytes(pe->frame));
  if (!owns.ok()) {
    return owns.status();
  }
  auto it = owns->find(block);
  if (it == owns->end()) {
    return Status::kPermissionDenied;
  }
  // Direct installs require write access: otherwise a reader could install a bogus
  // in-core copy of a block it cannot write (Sec. 4.3.3).
  if (!RunAcl(*pt, FrameBytes(pe->frame), SerializeAccess(AccessIntent::kWriteChild, block),
              creds)) {
    return Status::kPermissionDenied;
  }
  if (registry_.Lookup(block) != nullptr) {
    return Status::kAlreadyExists;
  }
  RegistryEntry e;
  e.block = block;
  e.parent = parent;
  e.tmpl = it->second;
  e.frame = frame;
  e.state = BufState::kResident;
  e.dirty = dirty;
  e.lru_stamp = ++lru_clock_;
  machine_->mem().Ref(frame);
  registry_.Install(e);
  parent_of_[block] = parent;
  return Status::kOk;
}

Status Xn::RawRead(hw::BlockId block, hw::FrameId frame, std::function<void(Status)> done) {
  ChargeOp("xn_raw_read");
  if (block >= disk_->geometry().num_blocks) {
    return Status::kInvalidArgument;
  }
  if (registry_.Lookup(block) != nullptr) {
    if (done) {
      done(Status::kOk);
    }
    return Status::kOk;
  }
  if (quarantined_.count(block) != 0) {
    return Status::kCorrupted;  // known-bad media: repair or rewrite it first
  }
  RegistryEntry e;
  e.block = block;
  e.parent = hw::kInvalidBlock;
  e.tmpl = kInvalidTemplate;  // "unknown type": unusable until bound to a parent
  e.frame = frame;
  e.state = BufState::kInTransit;
  e.lru_stamp = ++lru_clock_;
  machine_->mem().Ref(frame);
  registry_.Install(e);
  disk_->Submit({.write = false,
                 .start = block,
                 .nblocks = 1,
                 .frames = {frame},
                 .done = [this, block, done = std::move(done)](Status s) {
                   if (RegistryEntry* e = registry_.LookupMutable(block)) {
                     if (s == Status::kOk) {
                       s = CheckReadIntegrity(block);
                     }
                     if (s != Status::kOk) {
                       ReleaseFrame(e->frame);
                       registry_.Remove(block);
                     } else {
                       e->state = BufState::kResident;
                     }
                   }
                   if (done) {
                     done(s);
                   }
                 }});
  return Status::kOk;
}

Status Xn::BindToParent(hw::BlockId parent, hw::BlockId block, const Caps& creds) {
  ChargeOp("xn_bind");
  RegistryEntry* e = registry_.LookupMutable(block);
  if (e == nullptr || e->state != BufState::kResident) {
    return Status::kNotFound;
  }
  if (e->tmpl != kInvalidTemplate) {
    return Status::kAlreadyExists;
  }
  const RegistryEntry* pe = registry_.Lookup(parent);
  if (pe == nullptr || pe->state != BufState::kResident) {
    return Status::kNotFound;
  }
  const Template* pt = FindTemplate(pe->tmpl);
  if (pt == nullptr || !pt->is_metadata) {
    return Status::kBadMetadata;
  }
  auto owns = RunOwns(*pt, FrameBytes(pe->frame));
  if (!owns.ok()) {
    return owns.status();
  }
  auto it = owns->find(block);
  if (it == owns->end()) {
    return Status::kPermissionDenied;
  }
  if (!RunAcl(*pt, FrameBytes(pe->frame), SerializeAccess(AccessIntent::kReadChild, block),
              creds)) {
    return Status::kPermissionDenied;
  }
  e->tmpl = it->second;
  e->parent = parent;
  parent_of_[block] = parent;
  const Template* t = FindTemplate(e->tmpl);
  if (t != nullptr && t->is_metadata) {
    auto child_owns = RunOwns(*t, FrameBytes(e->frame));
    if (child_owns.ok()) {
      on_disk_owns_[block] = *child_owns;
    }
  }
  return Status::kOk;
}

Status Xn::Lock(hw::BlockId block, xok::EnvId owner) {
  ChargeOp("xn_lock");
  RegistryEntry* e = registry_.LookupMutable(block);
  if (e == nullptr) {
    return Status::kNotFound;
  }
  if (e->locked_by != xok::kInvalidEnv && e->locked_by != owner) {
    return Status::kBusy;
  }
  e->locked_by = owner;
  return Status::kOk;
}

Status Xn::Unlock(hw::BlockId block, xok::EnvId owner) {
  ChargeOp("xn_unlock");
  RegistryEntry* e = registry_.LookupMutable(block);
  if (e == nullptr) {
    return Status::kNotFound;
  }
  if (e->locked_by != owner) {
    return Status::kPermissionDenied;
  }
  e->locked_by = xok::kInvalidEnv;
  return Status::kOk;
}

Status Xn::Pin(hw::BlockId block) {
  RegistryEntry* e = registry_.LookupMutable(block);
  if (e == nullptr) {
    return Status::kNotFound;
  }
  ++e->pins;
  return Status::kOk;
}

Status Xn::Unpin(hw::BlockId block) {
  RegistryEntry* e = registry_.LookupMutable(block);
  if (e == nullptr || e->pins == 0) {
    return Status::kNotFound;
  }
  --e->pins;
  registry_.TouchLru(block, ++lru_clock_);
  return Status::kOk;
}

Status Xn::RemoveMapping(hw::BlockId block) {
  ChargeOp("xn_remove_mapping");
  const RegistryEntry* e = registry_.Lookup(block);
  if (e == nullptr) {
    return Status::kNotFound;
  }
  if (e->dirty || e->state == BufState::kInTransit || e->pins > 0 ||
      e->locked_by != xok::kInvalidEnv) {
    return Status::kBusy;
  }
  ReleaseFrame(e->frame);
  registry_.Remove(block);
  return Status::kOk;
}

Result<hw::FrameId> Xn::RecycleOldest() {
  ChargeOp("xn_recycle");
  hw::BlockId victim = registry_.OldestRecyclable();
  if (victim == hw::kInvalidBlock) {
    return Status::kOutOfResources;
  }
  hw::FrameId f = registry_.Lookup(victim)->frame;
  registry_.Remove(victim);
  // The caller inherits the registry's reference to the frame.
  return f;
}

// ---- Guarded metadata operations ----

Status Xn::GuardedModify(hw::BlockId meta, const Mods& mods, const Caps& creds,
                         const OwnsSet& require_added, const OwnsSet& require_removed) {
  RegistryEntry* e = registry_.LookupMutable(meta);
  if (e == nullptr) {
    return Status::kNotFound;
  }
  if (e->state == BufState::kInTransit || e->state == BufState::kWriteTransit) {
    return Status::kBusy;  // a read or flush is in flight; callers wait and retry
  }
  const Template* t = FindTemplate(e->tmpl);
  if (t == nullptr || !t->is_metadata) {
    return Status::kBadMetadata;
  }
  auto image = FrameBytes(e->frame);
  auto before = RunOwns(*t, image);
  if (!before.ok()) {
    return before.status();
  }
  std::vector<uint8_t> after_image(image.begin(), image.end());
  if (!ApplyMods(after_image, mods)) {
    return Status::kInvalidArgument;
  }
  auto after = RunOwns(*t, after_image);
  if (!after.ok()) {
    return after.status();
  }

  // The ownership delta must be exactly what the caller claimed (Sec. 4.1: "verifies
  // that the new result is equal to the old result plus b").
  OwnsSet added;
  OwnsSet removed;
  for (const auto& [b, tmpl] : *after) {
    auto it = before->find(b);
    if (it == before->end()) {
      added[b] = tmpl;
    } else if (it->second != tmpl) {
      return Status::kBadMetadata;  // retyping a block in place is not allowed
    }
  }
  for (const auto& [b, tmpl] : *before) {
    if (after->find(b) == after->end()) {
      removed[b] = tmpl;
    }
  }
  if (added != require_added || removed != require_removed) {
    return Status::kBadMetadata;
  }

  if (!RunAcl(*t, image, SerializeMods(mods), creds)) {
    return Status::kPermissionDenied;
  }

  // All checks passed: XN itself applies the modification to the cached metadata.
  auto frame = FrameBytesMutable(e->frame);
  for (const ByteMod& m : mods) {
    std::memcpy(frame.data() + m.offset, m.bytes.data(), m.bytes.size());
    machine_->Charge(machine_->cost().CopyCost(m.bytes.size()));
  }
  e->dirty = true;
  return Status::kOk;
}

Status Xn::Alloc(hw::BlockId meta, const Mods& mods, std::span<const udf::Extent> to_alloc,
                 const Caps& creds) {
  ChargeOp("xn_alloc");
  // Pre-validate the request against the free map.
  OwnsSet requested;
  for (const udf::Extent& ext : to_alloc) {
    for (uint32_t i = 0; i < ext.count; ++i) {
      hw::BlockId b = ext.start + i;
      if (b < first_data_block_ || b >= disk_->geometry().num_blocks || !free_map_[b]) {
        return Status::kOutOfResources;  // not free (possibly on the will-free list)
      }
      if (!requested.emplace(b, ext.type).second) {
        return Status::kInvalidArgument;
      }
    }
  }

  Status s = GuardedModify(meta, mods, creds, requested, /*require_removed=*/{});
  if (s != Status::kOk) {
    return s;
  }

  for (const auto& [b, tmpl] : requested) {
    MarkAllocated(b, true);
    parent_of_[b] = meta;
    const Template* ct = FindTemplate(tmpl);
    if (ct != nullptr && ct->is_metadata) {
      uninit_.insert(b);  // tainted until first written (Sec. 4.3.2)
    }
  }
  return Status::kOk;
}

Status Xn::Dealloc(hw::BlockId meta, const Mods& mods, std::span<const udf::Extent> to_free,
                   const Caps& creds) {
  ChargeOp("xn_dealloc");
  OwnsSet requested;
  for (const udf::Extent& ext : to_free) {
    for (uint32_t i = 0; i < ext.count; ++i) {
      if (!requested.emplace(ext.start + i, ext.type).second) {
        return Status::kInvalidArgument;
      }
    }
  }
  Status s = GuardedModify(meta, mods, creds, /*require_added=*/{}, requested);
  if (s != Status::kOk) {
    return s;
  }

  const OwnsSet* disk_owns = nullptr;
  if (auto it = on_disk_owns_.find(meta); it != on_disk_owns_.end()) {
    disk_owns = &it->second;
  }
  for (const auto& [b, tmpl] : requested) {
    uninit_.erase(b);
    parent_of_.erase(b);
    if (const RegistryEntry* e = registry_.Lookup(b)) {
      ReleaseFrame(e->frame);
      registry_.Remove(b);
    }
    if (disk_owns != nullptr && disk_owns->count(b) != 0) {
      // The parent's on-disk image still points at the block: defer reuse until
      // that pointer is overwritten by a write of the parent (Sec. 4.4).
      ++will_free_[b];
      ++stats_.will_free_deferrals;
    } else {
      MarkAllocated(b, false);
    }
  }
  return Status::kOk;
}

Status Xn::Modify(hw::BlockId meta, const Mods& mods, const Caps& creds) {
  ChargeOp("xn_modify");
  // Modify must be ownership-preserving: both required deltas are empty.
  return GuardedModify(meta, mods, creds, /*require_added=*/{}, /*require_removed=*/{});
}

bool Xn::ReachesPersistentRoot(hw::BlockId b) const {
  std::set<hw::BlockId> seen;
  hw::BlockId cur = b;
  for (;;) {
    if (!seen.insert(cur).second) {
      return false;  // cycle in parent chain: treat as unattached
    }
    for (const auto& [name, r] : roots_) {
      if (r.block == cur) {
        return !r.temporary;
      }
    }
    auto it = parent_of_.find(cur);
    if (it == parent_of_.end()) {
      return false;  // unattached subtree: exempt from ordering rules (Sec. 4.3.2)
    }
    cur = it->second;
  }
}

bool Xn::IsTaintedForWrite(hw::BlockId b, std::set<hw::BlockId>* visiting) {
  const RegistryEntry* e = registry_.Lookup(b);
  if (e == nullptr) {
    return false;
  }
  const Template* t = FindTemplate(e->tmpl);
  if (t == nullptr || !t->is_metadata) {
    return false;
  }
  if (!visiting->insert(b).second) {
    return false;
  }
  auto owns = RunOwns(*t, FrameBytes(e->frame));
  if (!owns.ok()) {
    return true;  // unparseable metadata must not reach disk
  }
  for (const auto& [child, tmpl] : *owns) {
    const Template* ct = FindTemplate(tmpl);
    if (ct == nullptr || !ct->is_metadata) {
      continue;
    }
    if (uninit_.count(child) != 0) {
      return true;  // points at uninitialized metadata
    }
    const RegistryEntry* ce = registry_.Lookup(child);
    if (ce != nullptr && ce->dirty && IsTaintedForWrite(child, visiting)) {
      return true;  // points at (cached, dirty) tainted metadata
    }
  }
  return false;
}

Status Xn::Write(std::span<const hw::BlockId> blocks, std::function<void(Status)> done) {
  ChargeOp("xn_write");
  if (blocks.empty()) {
    return Status::kInvalidArgument;
  }
  // Validate all blocks before submitting anything.
  for (hw::BlockId b : blocks) {
    const RegistryEntry* e = registry_.Lookup(b);
    if (e == nullptr || e->state == BufState::kInTransit ||
        e->state == BufState::kWriteTransit) {
      return e == nullptr ? Status::kNotFound : Status::kBusy;
    }
    if (e->locked_by != xok::kInvalidEnv) {
      return Status::kBusy;
    }
    std::set<hw::BlockId> visiting;
    if (uninit_.count(b) == 0 && !ReachesPersistentRoot(b)) {
      continue;  // unattached or temporary tree: no ordering constraints
    }
    if (ReachesPersistentRoot(b) && IsTaintedForWrite(b, &visiting)) {
      ++stats_.taint_rejections;
      return Status::kTainted;
    }
  }

  auto remaining = std::make_shared<int>(static_cast<int>(blocks.size()));
  auto first_err = std::make_shared<Status>(Status::kOk);

  // Submit each contiguous run as one scatter-gather request (the frame list may
  // be arbitrarily discontiguous) instead of one request per block. Timing is
  // identical to per-block submission: a busy disk would have merged the
  // per-block stream into exactly this gathered request, and an idle disk still
  // gets the run's first block as its own request, because per-block submission
  // dispatched that block immediately — before the rest could merge behind it.
  auto submit_run = [&](std::span<const hw::BlockId> run) {
    std::vector<hw::FrameId> frames;
    frames.reserve(run.size());
    for (hw::BlockId b : run) {
      RegistryEntry* e = registry_.LookupMutable(b);
      e->state = BufState::kWriteTransit;  // frame stays readable while the DMA runs
      frames.push_back(e->frame);
    }
    const hw::BlockId run_start = run.front();
    const uint32_t n = static_cast<uint32_t>(run.size());
    disk_->Submit({.write = true,
                   .start = run_start,
                   .nblocks = n,
                   .frames = std::move(frames),
                   .done = [this, run_start, n, remaining, first_err, done](Status s) {
                     if (s != Status::kOk) {
                       *first_err = s;
                     }
                     if (tracer_->enabled(trace::Category::kXn)) {
                       tracer_->Instant(trace::Category::kXn, trace_track_,
                                        s == Status::kOk ? "write_done" : "write_err",
                                        machine_->engine().now(), run_start);
                     }
                     for (uint32_t k = 0; k < n; ++k) {
                       OnWriteComplete(run_start + k, s);
                     }
                     *remaining -= static_cast<int>(n);
                     if (*remaining == 0 && done) {
                       done(*first_err);
                     }
                   }});
  };
  size_t i = 0;
  while (i < blocks.size()) {
    size_t j = i + 1;
    while (j < blocks.size() && blocks[j] == blocks[j - 1] + 1) {
      ++j;
    }
    std::span<const hw::BlockId> run = blocks.subspan(i, j - i);
    if (!disk_->active() && run.size() > 1) {
      submit_run(run.first(1));
      submit_run(run.subspan(1));
    } else {
      submit_run(run);
    }
    i = j;
  }
  return Status::kOk;
}

void Xn::OnWriteComplete(hw::BlockId b, Status s) {
  RegistryEntry* e = registry_.LookupMutable(b);
  if (e == nullptr) {
    return;  // crashed between submit and completion
  }
  e->state = BufState::kResident;
  if (s != Status::kOk) {
    // The block never reached the platter: it stays dirty (and, if freshly
    // allocated, uninitialized) so taint tracking keeps treating the on-disk copy
    // as the garbage it still is. The caller sees the error and may retry.
    return;
  }
  e->dirty = false;
  uninit_.erase(b);
  if (integrity_armed()) {
    // Record what the media must now hold: the only handle on a lost write
    // whose stale tag is otherwise self-consistent. An acked rewrite also
    // lifts any standing quarantine.
    expected_crc_[b] = hw::Crc32(FrameBytes(e->frame));
    quarantined_.erase(b);
  }

  const Template* t = FindTemplate(e->tmpl);
  if (t == nullptr || !t->is_metadata) {
    return;
  }
  auto owns = RunOwns(*t, disk_->RawBlock(b));
  if (!owns.ok()) {
    return;
  }
  // Pointers the old disk image held but the new one does not: release will-free
  // references; blocks with no remaining on-disk pointers become reusable.
  if (auto it = on_disk_owns_.find(b); it != on_disk_owns_.end()) {
    for (const auto& [child, tmpl] : it->second) {
      if (owns->count(child) != 0) {
        continue;
      }
      auto wf = will_free_.find(child);
      if (wf != will_free_.end() && --wf->second == 0) {
        will_free_.erase(wf);
        MarkAllocated(child, false);
      }
    }
  }
  on_disk_owns_[b] = *owns;
}

Result<std::vector<uint8_t>> Xn::ReadCached(hw::BlockId block, const Caps& creds) {
  const RegistryEntry* e = registry_.Lookup(block);
  if (e == nullptr || e->state != BufState::kResident) {
    return Status::kNotFound;
  }
  auto bytes = FrameBytes(e->frame);
  machine_->Charge(machine_->cost().CopyCost(bytes.size()));
  return std::vector<uint8_t>(bytes.begin(), bytes.end());
}

// ---- Free map ----

void Xn::MarkAllocated(hw::BlockId b, bool allocated) {
  EXO_CHECK_LT(b, free_map_.size());
  if (allocated) {
    EXO_CHECK(free_map_[b]);
    free_map_[b] = 0;
    --free_count_;
  } else {
    EXO_CHECK(!free_map_[b]);
    free_map_[b] = 1;
    ++free_count_;
    // A freed block's contents are dead: nothing to expect, nothing to protect.
    expected_crc_.erase(b);
    quarantined_.erase(b);
  }
}

bool Xn::IsAllocated(hw::BlockId b) const {
  return b < free_map_.size() && free_map_[b] == 0;
}

uint32_t Xn::FreeBlockCount() const { return free_count_; }

uint32_t Xn::NumBlocks() const { return disk_->geometry().num_blocks; }

Result<hw::BlockId> Xn::FindFreeRun(hw::BlockId hint, uint32_t count) const {
  if (count == 0) {
    return Status::kInvalidArgument;
  }
  const uint32_t n = static_cast<uint32_t>(free_map_.size());
  hw::BlockId start = std::max(hint, first_data_block_);
  for (int pass = 0; pass < 2; ++pass) {
    uint32_t run = 0;
    for (hw::BlockId b = start; b < n; ++b) {
      run = free_map_[b] ? run + 1 : 0;
      if (run == count) {
        return b - count + 1;
      }
    }
    start = first_data_block_;  // wrap once
  }
  return Status::kOutOfResources;
}

// ---- End-to-end integrity ----

void Xn::RestampSystemBlock(hw::BlockId b) {
  disk_->Restamp(b);
  quarantined_.erase(b);
  expected_crc_.erase(b);  // system blocks are verified by tag alone
}

void Xn::Quarantine(hw::BlockId b, const char* why) {
  if (!quarantined_.insert(b).second) {
    return;  // already known bad: count the detection once
  }
  ++stats_.corrupt_detections;
  ++*corrupted_counter_;
  if (tracer_->enabled(trace::Category::kXn)) {
    tracer_->Instant(trace::Category::kXn, trace_track_, why, machine_->engine().now(), b);
  }
}

Status Xn::CheckReadIntegrity(hw::BlockId b) {
  if (!integrity_armed()) {
    return Status::kOk;
  }
  bool bad = disk_->CheckBlock(b) != hw::BlockIntegrity::kOk;
  if (!bad) {
    // The tag is self-consistent; cross-check against the last acked write.
    // This is what catches an in-session lost write: the media still carries
    // an older, correctly-stamped generation.
    auto it = expected_crc_.find(b);
    bad = it != expected_crc_.end() && it->second != hw::Crc32(disk_->RawBlock(b));
  }
  if (!bad) {
    return Status::kOk;
  }
  Quarantine(b, "read_corrupt");
  return Status::kCorrupted;
}

Status Xn::TryRepair(hw::BlockId b) {
  if (!integrity_armed() || b >= disk_->geometry().num_blocks) {
    return Status::kInvalidArgument;
  }
  // Only a clean resident copy is trustworthy: it was itself verified when it
  // was read (or is the image of an acked write), and writing a *dirty* frame
  // through RawBlock would bypass the taint/ordering rules entirely.
  const RegistryEntry* e = registry_.Lookup(b);
  if (e == nullptr || e->state != BufState::kResident || e->dirty) {
    return Status::kCorrupted;
  }
  auto bytes = FrameBytes(e->frame);
  std::memcpy(disk_->RawBlock(b).data(), bytes.data(), hw::kBlockSize);
  disk_->Restamp(b);
  expected_crc_[b] = hw::Crc32(bytes);
  quarantined_.erase(b);
  ++stats_.repairs;
  ++*repaired_counter_;
  if (tracer_->enabled(trace::Category::kXn)) {
    tracer_->Instant(trace::Category::kXn, trace_track_, "repair", machine_->engine().now(), b);
  }
  return Status::kOk;
}

uint32_t Xn::ScrubStep(uint32_t budget) {
  if (!integrity_armed() || free_map_.empty()) {
    return 0;
  }
  const uint32_t n = NumBlocks();
  uint32_t scanned = 0;
  for (uint32_t step = 0; step < n && scanned < budget; ++step) {
    const hw::BlockId b = scrub_cursor_;
    scrub_cursor_ = (scrub_cursor_ + 1) % n;
    if (free_map_[b]) {
      continue;  // scrub covers allocated blocks only
    }
    // Skip blocks whose media image is legitimately behind the cache: an
    // uninitialized or dirty block has never had (or no longer has) an
    // authoritative on-disk generation, and in-transit blocks are mid-DMA.
    if (uninit_.count(b) != 0 || will_free_.count(b) != 0) {
      continue;
    }
    if (const RegistryEntry* e = registry_.Lookup(b);
        e != nullptr && (e->dirty || e->state != BufState::kResident)) {
      continue;
    }
    ++scanned;
    ++*scrub_scanned_counter_;
    if (quarantined_.count(b) != 0) {
      continue;  // already detected; waiting on repair or rewrite
    }
    bool bad = disk_->CheckBlock(b) != hw::BlockIntegrity::kOk;
    if (!bad) {
      auto it = expected_crc_.find(b);
      bad = it != expected_crc_.end() && it->second != hw::Crc32(disk_->RawBlock(b));
    }
    if (!bad) {
      continue;
    }
    Quarantine(b, "scrub_corrupt");
    if (TryRepair(b) == Status::kOk) {
      ++*scrub_repaired_counter_;
    } else {
      ++*scrub_quarantined_counter_;
    }
  }
  return scanned;
}

void Xn::StartScrubber(sim::Cycles interval, uint32_t budget, uint32_t steps) {
  if (steps == 0) {
    return;
  }
  if (!scrub_token_) {
    scrub_token_ = std::make_shared<int>(0);
  }
  // The token weak_ptr keeps a scheduled step from touching a destroyed Xn.
  std::weak_ptr<int> alive = scrub_token_;
  machine_->engine().ScheduleAfter(interval, [this, alive, interval, budget, steps] {
    if (alive.expired()) {
      return;
    }
    if (disk_->idle()) {
      ScrubStep(budget);  // idle priority: a busy disk defers the whole step
    }
    StartScrubber(interval, budget, steps - 1);
  });
}

Xn::IntegrityReport Xn::VerifyDiskIntegrity(uint64_t max_blocks) {
  IntegrityReport rep;
  if (!integrity_armed()) {
    return rep;
  }
  const bool tracing = tracer_->enabled(trace::Category::kXn);
  if (tracing) {
    tracer_->Begin(trace::Category::kXn, trace_track_, "integrity_scan",
                   machine_->engine().now());
  }
  const uint64_t n =
      std::min<uint64_t>(disk_->geometry().num_blocks, max_blocks);
  for (hw::BlockId b = 0; b < n; ++b) {
    ++rep.scanned;
    const hw::BlockIntegrity v = disk_->CheckBlock(b);
    if (v == hw::BlockIntegrity::kOk) {
      continue;
    }
    if (v == hw::BlockIntegrity::kUnreadable) {
      ++rep.unreadable;
    }
    Quarantine(b, "fsck_corrupt");
    ++rep.quarantined;
  }
  // Bounded time: a tag compare per block, charged like a cheap sequential scan.
  machine_->Charge(machine_->cost().FromMicros(2) * rep.scanned);
  machine_->counters().Add("xn.integrity_blocks_scanned", rep.scanned);
  if (tracing) {
    tracer_->End(trace::Category::kXn, trace_track_, "integrity_scan",
                 machine_->engine().now(), rep.quarantined);
  }
  return rep;
}

}  // namespace exo::xn
