// The buffer cache registry (Sec. 4.3.3).
//
// The registry tracks the mapping of cached disk blocks to the physical pages holding
// them — only the mapping, not the blocks themselves; the data lives in application-
// managed frames. It records each mapping's state (uninitialized / in transit /
// resident, dirty, locked), keeps an LRU list of unused-but-valid buffers that
// libOSes recycle by default, and is mapped read-only into application space (here:
// const accessors cost nothing).
//
// XN never evicts registry entries on its own (applications choose caching policy);
// entries leave only when an application removes them or reuses the frame.
#ifndef EXO_XN_REGISTRY_H_
#define EXO_XN_REGISTRY_H_

#include <cstdint>
#include <list>
#include <map>

#include "hw/disk.h"
#include "hw/phys_mem.h"
#include "sim/status.h"
#include "xn/types.h"
#include "xok/env.h"

namespace exo::xn {

enum class BufState : uint8_t {
  kUninitialized,   // allocated metadata never yet written to disk
  kInTransit,       // disk READ outstanding: the frame does not yet hold valid data
  kWriteTransit,    // disk WRITE outstanding: the frame is valid and readable
  kResident,        // frame holds valid data
};

struct RegistryEntry {
  hw::BlockId block = hw::kInvalidBlock;
  hw::BlockId parent = hw::kInvalidBlock;  // metadata block that owns this one
  TemplateId tmpl = kInvalidTemplate;      // kInvalidTemplate => "unknown type" raw read
  hw::FrameId frame = hw::kInvalidFrame;
  BufState state = BufState::kResident;
  bool dirty = false;
  xok::EnvId locked_by = xok::kInvalidEnv;
  uint32_t pins = 0;       // readers that must not see the frame recycled
  uint64_t lru_stamp = 0;  // for the kernel-maintained LRU of unused buffers
};

class Registry {
 public:
  const RegistryEntry* Lookup(hw::BlockId b) const {
    auto it = entries_.find(b);
    return it == entries_.end() ? nullptr : &it->second;
  }
  RegistryEntry* LookupMutable(hw::BlockId b) {
    auto it = entries_.find(b);
    return it == entries_.end() ? nullptr : &it->second;
  }

  // Installs or replaces an entry. The caller has already performed access checks.
  RegistryEntry& Install(const RegistryEntry& e) {
    auto [it, inserted] = entries_.insert_or_assign(e.block, e);
    return it->second;
  }

  void Remove(hw::BlockId b) { entries_.erase(b); }

  // Reverse mapping: which block a frame caches, if any.
  hw::BlockId BlockOfFrame(hw::FrameId f) const {
    for (const auto& [b, e] : entries_) {
      if (e.frame == f) {
        return b;
      }
    }
    return hw::kInvalidBlock;
  }

  size_t size() const { return entries_.size(); }
  const std::map<hw::BlockId, RegistryEntry>& entries() const { return entries_; }

  // LRU of unused-but-valid buffers: touched on every release; the oldest clean,
  // unlocked, unpinned entry is the default recycling victim.
  void TouchLru(hw::BlockId b, uint64_t stamp) {
    if (auto* e = LookupMutable(b)) {
      e->lru_stamp = stamp;
    }
  }

  // Oldest resident, clean, unlocked, unpinned entry (kInvalidBlock if none).
  hw::BlockId OldestRecyclable() const {
    hw::BlockId best = hw::kInvalidBlock;
    uint64_t best_stamp = UINT64_MAX;
    for (const auto& [b, e] : entries_) {
      if (e.state == BufState::kResident && !e.dirty && e.locked_by == xok::kInvalidEnv &&
          e.pins == 0 && e.lru_stamp < best_stamp) {
        best = b;
        best_stamp = e.lru_stamp;
      }
    }
    return best;
  }

 private:
  std::map<hw::BlockId, RegistryEntry> entries_;
};

}  // namespace exo::xn

#endif  // EXO_XN_REGISTRY_H_
