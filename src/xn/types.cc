#include "xn/types.h"

#include <cstring>

namespace exo::xn {

namespace {

void PutU16(std::vector<uint8_t>& out, uint16_t v) {
  out.push_back(static_cast<uint8_t>(v & 0xff));
  out.push_back(static_cast<uint8_t>(v >> 8));
}

void PutU32(std::vector<uint8_t>& out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<uint8_t>((v >> (8 * i)) & 0xff));
  }
}

}  // namespace

bool ApplyMods(std::vector<uint8_t>& image, const Mods& mods) {
  for (const ByteMod& m : mods) {
    if (static_cast<uint64_t>(m.offset) + m.bytes.size() > image.size()) {
      return false;
    }
    std::memcpy(image.data() + m.offset, m.bytes.data(), m.bytes.size());
  }
  return true;
}

std::vector<uint8_t> SerializeMods(const Mods& mods) {
  std::vector<uint8_t> out;
  out.push_back(static_cast<uint8_t>(AccessIntent::kModify));
  PutU16(out, static_cast<uint16_t>(mods.size()));
  for (const ByteMod& m : mods) {
    PutU32(out, m.offset);
    PutU16(out, static_cast<uint16_t>(m.bytes.size()));
    out.insert(out.end(), m.bytes.begin(), m.bytes.end());
  }
  return out;
}

std::vector<uint8_t> SerializeAccess(AccessIntent intent, hw::BlockId child) {
  std::vector<uint8_t> out;
  out.push_back(static_cast<uint8_t>(intent));
  PutU32(out, child);
  return out;
}

std::vector<uint8_t> SerializeCaps(const Caps& caps) {
  std::vector<uint8_t> out;
  PutU16(out, static_cast<uint16_t>(caps.size()));
  for (const auto& cap : caps) {
    out.push_back(cap.write ? 1 : 0);
    PutU16(out, static_cast<uint16_t>(cap.name.size()));
    for (uint16_t part : cap.name) {
      PutU16(out, part);
    }
  }
  return out;
}

}  // namespace exo::xn
