// Common XN types: template/metadata identifiers, byte-level modification lists, and
// the serialization conventions shared between XN and the UDFs it runs.
//
// A proposed metadata change is a list of (offset, bytes) writes. XN never interprets
// metadata itself; it hands the bytes to the template's UDFs:
//   - owns-udf   reads the metadata (buffer kBufMeta) and emits ownership extents.
//   - acl-uf     reads metadata (kBufMeta), the serialized modification or access
//                intent (kBufAux), and serialized credentials (kBufCred), returning
//                nonzero to approve.
//   - size-uf    returns the metadata size in bytes.
//
// kBufAux serialization (little-endian):
//   byte 0: intent — 0 = read child, 1 = write child, 2 = modify metadata
//   intent 0/1: u32 child block id
//   intent 2:   u16 mod count; per mod: u32 offset, u16 length, raw bytes
//
// kBufCred serialization:
//   u16 cap count; per cap: u8 write flag, u16 part count, parts as u16s
#ifndef EXO_XN_TYPES_H_
#define EXO_XN_TYPES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "hw/disk.h"
#include "udf/insn.h"
#include "xok/capability.h"

namespace exo::xn {

using TemplateId = uint32_t;
constexpr TemplateId kDataTemplate = 0;  // raw data blocks: no UDFs, never metadata
constexpr TemplateId kInvalidTemplate = 0xffffffff;

using Caps = std::vector<xok::Capability>;

struct ByteMod {
  uint32_t offset = 0;
  std::vector<uint8_t> bytes;
};
using Mods = std::vector<ByteMod>;

enum class AccessIntent : uint8_t { kReadChild = 0, kWriteChild = 1, kModify = 2 };

// Applies mods to a metadata image. Returns false if any mod is out of bounds.
bool ApplyMods(std::vector<uint8_t>& image, const Mods& mods);

std::vector<uint8_t> SerializeMods(const Mods& mods);
std::vector<uint8_t> SerializeAccess(AccessIntent intent, hw::BlockId child);
std::vector<uint8_t> SerializeCaps(const Caps& caps);

// A metadata template (Sec. 4.1): one per on-disk data-structure type.
struct Template {
  TemplateId id = kInvalidTemplate;
  std::string name;          // unique, e.g. "cffs-inode-block"
  bool is_metadata = false;  // metadata blocks are taint-tracked; data blocks are not
  udf::Program owns_udf;     // deterministic; emits owned extents
  udf::Program acl_uf;       // may read the clock; approves modifications/accesses
  udf::Program size_uf;      // returns structure size in bytes
};

}  // namespace exo::xn

#endif  // EXO_XN_TYPES_H_
