#include "exos/system.h"

#include <cstring>

#include "udf/assembler.h"

namespace exo::os {

namespace {

// Pipe cost constants, calibrated against Table 2 (13/30/34 us one-way for 1 byte).
constexpr sim::Cycles kExosPipeOp = 350;   // libOS pipe bookkeeping per operation
constexpr sim::Cycles kBsdPipeOp = 2150;   // in-kernel pipe path beyond the trap

// Fork cost model (Sec. 6.2: ExOS fork ~6 ms, OpenBSD < 1 ms for a typical process).
// Xok environments cannot share page tables, so ExOS rebuilds the child's address
// space through (batched) system calls and bookkeeping per page.
constexpr sim::Cycles kExosForkFixed = 100'000;
constexpr sim::Cycles kExosForkPerPage = 2'500;
constexpr sim::Cycles kBsdForkFixed = 50'000;
constexpr sim::Cycles kBsdForkPerPage = 400;

// The wakeup predicate installed on every protected-pipe read (Table 2): wake when
// the byte count (u32 at offset 0) is nonzero or the write side closed (byte 4).
const udf::Program& PipePredicate() {
  static const udf::Program prog = [] {
    auto r = udf::Assemble(R"(
      ldi r1, 0
      ld4 r2, r1, 0, meta
      ld1 r3, r1, 4, meta
      or r4, r2, r3
      ret r4
    )");
    EXO_CHECK(r.ok);
    return r.program;
  }();
  return prog;
}

}  // namespace

const char* FlavorName(Flavor f) {
  switch (f) {
    case Flavor::kXokExos:
      return "Xok/ExOS";
    case Flavor::kOpenBsdCffs:
      return "OpenBSD/C-FFS";
    case Flavor::kOpenBsd:
      return "OpenBSD";
    case Flavor::kFreeBsd:
      return "FreeBSD";
  }
  return "?";
}

System::System(hw::Machine* machine, Flavor flavor, const SystemOptions& options)
    : machine_(machine), flavor_(flavor), options_(options) {
  bsd_syscall_counter_ = machine_->counters().Handle("bsd.syscalls");
  kernel_ = std::make_unique<xok::XokKernel>(machine_);
  // Default program images (sizes shaped after 1997 BSD userland binaries; ExOS
  // binaries are comparable because the libOS is a shared library, Sec. 5.2.2).
  programs_["sh"] = {60, 64};
  programs_["cp"] = {40, 64};
  programs_["rm"] = {30, 48};
  programs_["gzip"] = {80, 128};
  programs_["gunzip"] = {80, 128};
  programs_["pax"] = {120, 96};
  programs_["diff"] = {100, 128};
  programs_["gcc"] = {1200, 512};
  programs_["wc"] = {30, 48};
  programs_["grep"] = {60, 64};
  programs_["cksum"] = {30, 48};
  programs_["tsp"] = {40, 200};
  programs_["sor"] = {40, 400};
  programs_["bench"] = {40, 64};
}

System::~System() = default;

void System::AddProgram(const std::string& name, const ProgramImage& image) {
  programs_[name] = image;
}

const ProgramImage& System::Image(const std::string& name) const {
  auto it = programs_.find(name);
  if (it != programs_.end()) {
    return it->second;
  }
  static const ProgramImage kDefault;
  return kDefault;
}

fs::Blocker System::MakeBlocker() {
  return [this](const std::function<bool()>& ready) {
    if (kernel_->current() != nullptr) {
      if (ready()) {
        return;
      }
      xok::WakeupPredicate p;
      p.host = ready;
      kernel_->SysSleep(std::move(p));
    } else {
      // Boot/host context: spin the event engine.
      int spins = 0;
      while (!ready()) {
        auto& e = machine_->engine();
        if (e.HasPendingEvents()) {
          e.RunNextEvent();
        } else {
          e.Advance(20'000);
        }
        EXO_CHECK_LT(++spins, 2'000'000);
      }
    }
  };
}

namespace {

// Default ExOS revocation compliance (Sec. 3.4/3.5): when the kernel asks for
// frames back, shed directly-held frame references until under the requested
// ceiling. Cached frames are a performance hint, not correctness state, so a
// well-behaved libOS can always comply.
void InstallRevocationHandler(xok::XokKernel* kernel, xok::EnvId id) {
  xok::Env& e = kernel->env(id);
  e.on_revoke = [kernel, &e](const xok::RevocationRequest& req) {
    if (req.resource != xok::RevokeResource::kFrames) {
      return;  // regions/filters carry libOS state; those requests need app logic
    }
    while (e.usage.frames > req.allowed && !e.frame_refs.empty()) {
      hw::FrameId f = e.frame_refs.begin()->first;
      if (kernel->SysFrameFree(f, xok::kCredAny) != Status::kOk) {
        break;
      }
    }
  };
}

}  // namespace

Status System::Boot() {
  const bool exo = flavor_ == Flavor::kXokExos;
  if (exo && !options_.disable_xn) {
    xn_ = std::make_unique<xn::Xn>(machine_, &machine_->disk());
    // XN's registry references route back through the kernel's accounting so
    // frame guards retire with the last reference.
    xn_->SetFrameRelease([this](hw::FrameId f) { kernel_->FrameUnref(f); });
    xn_->Format();
    Status s = xn_->Attach();
    if (s != Status::kOk) {
      return s;
    }
    backend_ = std::make_unique<fs::XnBackend>(
        xn_.get(), xn::Caps{xok::Capability::For({xok::kCapFs, 1})}, MakeBlocker(), [this] {
          // Shared allocation: buffer-cache frames belong to the registry, not
          // the env that happened to fault them in.
          auto f = kernel_->SysFrameAlloc(0, xok::CapName{xok::kCapFs, 1}, /*shared=*/true);
          return f.ok() ? *f : hw::kInvalidFrame;
        });
  } else {
    fs::KernelBackendOptions ko;
    if (flavor_ == Flavor::kFreeBsd || exo) {
      ko.max_cache_blocks = 0;  // unified buffer cache
    } else {
      ko.max_cache_blocks = options_.bsd_cache_blocks;  // OpenBSD's small cache
    }
    backend_ =
        std::make_unique<fs::KernelBackend>(machine_, &machine_->disk(), MakeBlocker(), ko);
  }

  const bool use_cffs = exo || flavor_ == Flavor::kOpenBsdCffs;
  if (use_cffs) {
    fs::CffsOptions co;
    co.fsid = 1;
    co.writeback_threshold = options_.writeback_threshold;
    cffs_ = std::make_unique<fs::Cffs>(backend_.get(), co);
    Status s = cffs_->Mkfs();
    if (s != Status::kOk) {
      return s;
    }
    // Only the exokernel configuration exposes the file layout to applications.
    fs_ = std::make_unique<fs::CffsFileSys>(cffs_.get(), /*expose_layout=*/exo);
  } else {
    fs::FfsOptions fo;
    fo.sync_metadata = true;
    fo.writeback_threshold = options_.writeback_threshold;
    ffs_ = std::make_unique<fs::Ffs>(backend_.get(), fo);
    Status s = ffs_->Mkfs();
    if (s != Status::kOk) {
      return s;
    }
    // Ffs implements FileSys directly; wrap in a non-owning unique_ptr stand-in.
    fs_ = nullptr;
  }

  fsp_ = fs_ != nullptr ? fs_.get() : static_cast<fs::FileSys*>(ffs_.get());
  fs::FileSys& f = *fsp_;

  // Install /bin with realistically sized binaries (exec demand-loads them through
  // the buffer cache, so first exec of a program pays disk time).
  Status s = f.Mkdir("/bin", 0);
  if (s != Status::kOk) {
    return s;
  }
  std::vector<uint8_t> chunk(hw::kBlockSize);
  for (const auto& [name, img] : programs_) {
    auto h = f.Open("/bin/" + name, /*create=*/true, 0);
    if (!h.ok()) {
      return h.status();
    }
    uint64_t size = static_cast<uint64_t>(img.text_kb) * 1024;
    for (uint64_t off = 0; off < size; off += chunk.size()) {
      for (size_t i = 0; i < chunk.size(); ++i) {
        chunk[i] = static_cast<uint8_t>(off + i);
      }
      uint32_t n = static_cast<uint32_t>(std::min<uint64_t>(chunk.size(), size - off));
      auto w = f.Write(*h, off, std::span<const uint8_t>(chunk.data(), n), 0);
      if (!w.ok()) {
        return w.status();
      }
    }
  }
  s = f.Sync();
  if (s != Status::kOk) {
    return s;
  }
  machine_->counters().Reset();  // measurement starts after boot
  return Status::kOk;
}

void System::TouchSharedState() {
  if (flavor_ == Flavor::kXokExos && options_.protected_shared_state &&
      kernel_->current() != nullptr) {
    kernel_->SysNull(3);
  }
}

uint64_t System::syscall_count() const {
  if (flavor_ == Flavor::kXokExos) {
    return machine_->counters().Get("xok.syscalls");
  }
  return machine_->counters().Get("bsd.syscalls");
}

int System::SpawnInit(const std::string& program, std::function<void(UnixEnv&)> body) {
  int pid = NextPid();
  auto proc = std::make_unique<Proc>(this, pid, xok::kInvalidEnv, 7, program);
  Proc* raw = proc.get();
  procs_.push_back(std::move(proc));
  xok::EnvId env = kernel_->CreateEnv(
      xok::kInvalidEnv, {xok::Capability::Root()},
      [this, raw, program, body = std::move(body)] {
        body(*raw);
        proc_records_.push_back({program, kernel_->env(raw->env()).spawned_at,
                                 machine_->engine().now()});
      });
  raw->SetEnv(env);
  InstallRevocationHandler(kernel_.get(), env);
  pid_to_env_[pid] = env;
  return pid;
}

void System::Run() { kernel_->Run(); }

Status System::SetTickets(int pid, uint32_t tickets) {
  auto it = pid_to_env_.find(pid);
  if (it == pid_to_env_.end() || !kernel_->EnvExists(it->second) ||
      !kernel_->env(it->second).alive) {
    return Status::kNotFound;
  }
  xok::ResourceQuota q = kernel_->env(it->second).quota;
  q.cpu_tickets = tickets;
  return kernel_->SysSetQuota(it->second, q, xok::kCredAny);
}

// ---- Proc ----

Proc::Proc(System* sys, int pid, xok::EnvId env, uint16_t uid, std::string program)
    : sys_(sys), pid_(pid), env_(env), uid_(uid), program_(std::move(program)) {}

void Proc::ChargeCall() {
  const auto& c = sys_->machine_->cost();
  if (IsExos()) {
    // The "syscall" is a procedure call into the libOS linked with the process.
    sys_->kernel_->ChargeCpu(c.libos_procedure_call);
  } else {
    sys_->kernel_->ChargeCpu(c.trap_round_trip + c.unix_syscall_dispatch);
    ++*sys_->bsd_syscall_counter_;
  }
}

int Proc::GetPid() {
  ChargeCall();
  sys_->kernel_->ChargeCpu(sys_->machine_->cost().getpid_body);
  return pid_;
}

Result<int> Proc::Open(const std::string& path, bool create) {
  ChargeCall();
  auto h = sys_->fs().Open(path, create, uid_);
  if (!h.ok()) {
    return h.status();
  }
  sys_->TouchSharedState();
  int fd = sys_->next_fd_++;
  sys_->fds_[fd] = {System::FdEntry::Kind::kFile, *h, 0, path, 0};
  return fd;
}

Status Proc::Close(int fd) {
  ChargeCall();
  auto it = sys_->fds_.find(fd);
  if (it == sys_->fds_.end()) {
    return Status::kNotFound;
  }
  sys_->TouchSharedState();
  if (it->second.kind != System::FdEntry::Kind::kFile) {
    auto pit = sys_->pipes_.find(it->second.pipe);
    if (pit != sys_->pipes_.end()) {
      System::PipeState& p = *pit->second;
      if (it->second.kind == System::FdEntry::Kind::kPipeWrite) {
        p.write_closed = true;
        if (p.region_shadow.size() >= 5) {
          p.region_shadow[4] = 1;  // predicate window: writer gone
        }
      } else {
        p.read_closed = true;
      }
    }
  }
  sys_->fds_.erase(it);
  return Status::kOk;
}

Result<uint32_t> Proc::Read(int fd, std::span<uint8_t> out) {
  ChargeCall();
  auto it = sys_->fds_.find(fd);
  if (it == sys_->fds_.end()) {
    return Status::kNotFound;
  }
  System::FdEntry& e = it->second;
  if (e.kind == System::FdEntry::Kind::kPipeRead) {
    return PipeRead(*sys_->pipes_.at(e.pipe), out);
  }
  if (e.kind != System::FdEntry::Kind::kFile) {
    return Status::kInvalidArgument;
  }
  auto n = sys_->fs().Read(e.handle, e.offset, out);
  if (!n.ok()) {
    return n;
  }
  sys_->TouchSharedState();  // the shared fd table's offset field is written
  e.offset += *n;
  return n;
}

Result<uint32_t> Proc::Write(int fd, std::span<const uint8_t> data) {
  ChargeCall();
  auto it = sys_->fds_.find(fd);
  if (it == sys_->fds_.end()) {
    return Status::kNotFound;
  }
  System::FdEntry& e = it->second;
  if (e.kind == System::FdEntry::Kind::kPipeWrite) {
    return PipeWrite(*sys_->pipes_.at(e.pipe), data);
  }
  if (e.kind != System::FdEntry::Kind::kFile) {
    return Status::kInvalidArgument;
  }
  auto n = sys_->fs().Write(e.handle, e.offset, data, uid_);
  if (!n.ok()) {
    return n;
  }
  sys_->TouchSharedState();
  e.offset += *n;
  return n;
}

Result<uint64_t> Proc::Seek(int fd, uint64_t off) {
  ChargeCall();
  auto it = sys_->fds_.find(fd);
  if (it == sys_->fds_.end()) {
    return Status::kNotFound;
  }
  sys_->TouchSharedState();
  it->second.offset = off;
  return off;
}

Result<fs::FileStat> Proc::Stat(const std::string& path) {
  ChargeCall();
  return sys_->fs().StatPath(path);
}

Result<fs::FileStat> Proc::FStat(int fd) {
  ChargeCall();
  auto it = sys_->fds_.find(fd);
  if (it == sys_->fds_.end()) {
    return Status::kNotFound;
  }
  return sys_->fs().StatHandle(it->second.handle);
}

Result<std::vector<fs::DirEnt>> Proc::ReadDir(const std::string& path) {
  ChargeCall();
  return sys_->fs().ReadDir(path);
}

Status Proc::Mkdir(const std::string& path) {
  ChargeCall();
  return sys_->fs().Mkdir(path, uid_);
}

Status Proc::Unlink(const std::string& path) {
  ChargeCall();
  return sys_->fs().Unlink(path, uid_);
}

Status Proc::Rename(const std::string& from, const std::string& to) {
  ChargeCall();
  return sys_->fs().Rename(from, to, uid_);
}

Status Proc::Sync() {
  ChargeCall();
  return sys_->fs().Sync();
}

Result<std::pair<int, int>> Proc::Pipe() {
  ChargeCall();
  sys_->TouchSharedState();
  auto p = std::make_unique<System::PipeState>();
  p->id = sys_->next_pipe_++;
  p->protected_mode = IsExos() && sys_->options_.protected_pipes;
  if (p->protected_mode) {
    // Pipe data lives in a software region; the first 8 bytes mirror (count, flags)
    // for the wakeup predicate's exposed window.
    auto r = sys_->kernel_->SysRegionCreate(p->capacity + 8, {}, 0);
    if (!r.ok()) {
      return r.status();
    }
    p->region = *r;
    p->region_shadow.assign(8, 0);
  }
  int pipe_id = p->id;
  sys_->pipes_[pipe_id] = std::move(p);
  int rfd = sys_->next_fd_++;
  int wfd = sys_->next_fd_++;
  sys_->fds_[rfd] = {System::FdEntry::Kind::kPipeRead, 0, 0, "", pipe_id};
  sys_->fds_[wfd] = {System::FdEntry::Kind::kPipeWrite, 0, 0, "", pipe_id};
  return std::make_pair(rfd, wfd);
}

Result<uint32_t> Proc::PipeRead(System::PipeState& p, std::span<uint8_t> out) {
  auto* kernel = sys_->kernel_.get();
  const auto& cost = sys_->machine_->cost();
  for (;;) {
    if (p.protected_mode) {
      // Table 2's "Protection" variant installs a wakeup predicate on every read —
      // gratuitously, even when data is already available.
      xok::WakeupPredicate pred;
      pred.program = PipePredicate();
      pred.live_window = &p.region_shadow;
      kernel->SysSleep(std::move(pred));
    }
    if (p.bytes == 0) {
      if (p.write_closed) {
        return 0u;  // EOF
      }
      System::PipeState* pp = &p;
      xok::WakeupPredicate pred;
      if (p.protected_mode) {
        pred.program = PipePredicate();
        pred.live_window = &p.region_shadow;
      } else {
        pred.host = [pp] { return pp->bytes > 0 || pp->write_closed; };
      }
      kernel->SysSleep(std::move(pred));
      continue;
    }
    uint32_t n = static_cast<uint32_t>(std::min<size_t>(out.size(), p.bytes));
    if (p.protected_mode) {
      // Kernel-mediated copy out of the software region (charges trap + copy).
      Status s = kernel->SysRegionRead(p.region, 8, out.subspan(0, n), 0);
      if (s != Status::kOk) {
        return s;
      }
      kernel->ChargeCpu(kExosPipeOp);
      // The data content mirror lives in buf (ring bookkeeping is libOS-private).
      for (uint32_t i = 0; i < n; ++i) {
        out[i] = p.buf.front();
        p.buf.pop_front();
      }
    } else {
      kernel->ChargeCpu((IsExos() ? kExosPipeOp : kBsdPipeOp) + cost.CopyCost(n));
      for (uint32_t i = 0; i < n; ++i) {
        out[i] = p.buf.front();
        p.buf.pop_front();
      }
    }
    p.bytes -= n;
    if (p.protected_mode) {
      std::memcpy(p.region_shadow.data(), &p.bytes, 4);
    }
    return n;
  }
}

Result<uint32_t> Proc::PipeWrite(System::PipeState& p, std::span<const uint8_t> data) {
  auto* kernel = sys_->kernel_.get();
  const auto& cost = sys_->machine_->cost();
  if (p.read_closed) {
    return Status::kInvalidArgument;  // EPIPE
  }
  size_t done = 0;
  while (done < data.size()) {
    if (p.bytes == p.capacity) {
      System::PipeState* pp = &p;
      xok::WakeupPredicate pred;
      pred.host = [pp] { return pp->bytes < pp->capacity || pp->read_closed; };
      kernel->SysSleep(std::move(pred));
      if (p.read_closed) {
        return Status::kInvalidArgument;
      }
      continue;
    }
    const bool was_empty = p.bytes == 0;
    uint32_t n = static_cast<uint32_t>(
        std::min<size_t>(data.size() - done, p.capacity - p.bytes));
    if (p.protected_mode) {
      Status s = kernel->SysRegionWrite(p.region, 8, data.subspan(done, n), 0);
      if (s != Status::kOk) {
        return s;
      }
      kernel->ChargeCpu(kExosPipeOp);
    } else {
      kernel->ChargeCpu((IsExos() ? kExosPipeOp : kBsdPipeOp) + cost.CopyCost(n));
    }
    for (uint32_t i = 0; i < n; ++i) {
      p.buf.push_back(data[done + i]);
    }
    p.bytes += n;
    if (p.protected_mode) {
      std::memcpy(p.region_shadow.data(), &p.bytes, 4);
    }
    done += n;
    // ExOS pipes hand the rest of the slice to the other party when it has work to
    // do (directed yield, Sec. 5.2.1). On BSD the kernel merely wakes the sleeper.
    if (IsExos() && was_empty) {
      kernel->SysYield(xok::kInvalidEnv);
    }
  }
  return static_cast<uint32_t>(data.size());
}

Result<int> Proc::DoFork(const std::string& program, std::function<void(UnixEnv&)> body) {
  // fork(): duplicate the (current) address space.
  auto* kernel = sys_->kernel_.get();
  const ProgramImage& img = sys_->Image(program_);
  if (IsExos()) {
    kernel->ChargeCpu(kExosForkFixed + static_cast<sim::Cycles>(img.pages()) * kExosForkPerPage);
  } else {
    kernel->ChargeCpu(kBsdForkFixed + static_cast<sim::Cycles>(img.pages()) * kBsdForkPerPage);
  }
  sys_->TouchSharedState();  // process map + table updates

  int pid = sys_->NextPid();
  auto child = std::make_unique<Proc>(sys_, pid, xok::kInvalidEnv, uid_, program);
  Proc* raw = child.get();
  sys_->procs_.push_back(std::move(child));
  xok::EnvId child_env = kernel->CreateEnv(
      env_, {xok::Capability::Root()}, [this, raw, program, body = std::move(body)] {
        body(*raw);
        sys_->proc_records_.push_back({program, sys_->kernel_->env(raw->env()).spawned_at,
                                       sys_->machine_->engine().now()});
      });
  raw->SetEnv(child_env);
  InstallRevocationHandler(kernel, child_env);
  sys_->pid_to_env_[pid] = child_env;
  return pid;
}

Result<int> Proc::Fork(std::function<void(UnixEnv&)> body) {
  ChargeCall();
  return DoFork(program_, std::move(body));
}

Result<int> Proc::Spawn(const std::string& program, std::function<void(UnixEnv&)> body) {
  ChargeCall();
  auto* kernel = sys_->kernel_.get();
  const ProgramImage& img = sys_->Image(program);

  // exec(): demand-load the binary through the buffer cache and map its pages.
  auto h = sys_->fs().Open("/bin/" + program, false, 0);
  if (h.ok()) {
    auto st = sys_->fs().StatHandle(*h);
    if (st.ok()) {
      std::vector<uint8_t> page(hw::kBlockSize);
      for (uint64_t off = 0; off < st->size; off += page.size()) {
        auto n = sys_->fs().Read(*h, off, page);
        if (!n.ok() || *n == 0) {
          break;
        }
      }
    }
    const auto& c = sys_->machine_->cost();
    kernel->ChargeCpu(static_cast<sim::Cycles>(img.pages()) *
                      (IsExos() ? c.pte_update_batched : c.pte_update_kernel));
  }

  return DoFork(program, std::move(body));
}

Result<int> Proc::Wait(int pid) {
  ChargeCall();
  auto it = sys_->pid_to_env_.find(pid);
  if (it == sys_->pid_to_env_.end()) {
    return Status::kNotFound;
  }
  auto r = sys_->kernel_->SysWait(it->second);
  if (r.ok()) {
    sys_->TouchSharedState();  // reaping updates the shared process table
    sys_->pid_to_env_.erase(it);
  }
  return r;
}

Result<int> Proc::WaitAny() {
  ChargeCall();
  // Collect this process's live children.
  std::vector<int> children;
  for (const auto& [pid, envid] : sys_->pid_to_env_) {
    if (sys_->kernel_->EnvExists(envid) && sys_->kernel_->env(envid).parent == env_) {
      children.push_back(pid);
    }
  }
  if (children.empty()) {
    return Status::kNotFound;
  }
  auto find_zombie = [this, children]() -> int {
    for (int pid : children) {
      auto it = sys_->pid_to_env_.find(pid);
      if (it != sys_->pid_to_env_.end() && sys_->kernel_->EnvExists(it->second) &&
          sys_->kernel_->env(it->second).state == xok::EnvState::kZombie) {
        return pid;
      }
    }
    return -1;
  };
  if (find_zombie() < 0) {
    xok::WakeupPredicate p;
    p.host = [find_zombie] { return find_zombie() >= 0; };
    sys_->kernel_->SysSleep(std::move(p));
  }
  int pid = find_zombie();
  EXO_CHECK_GE(pid, 0);
  auto r = sys_->kernel_->SysWait(sys_->pid_to_env_.at(pid));
  if (!r.ok()) {
    return r.status();
  }
  sys_->TouchSharedState();
  sys_->pid_to_env_.erase(pid);
  return pid;
}

void Proc::Compute(sim::Cycles cycles) { sys_->kernel_->ChargeCpu(cycles); }

void Proc::TouchData(uint64_t bytes) {
  sys_->kernel_->ChargeCpu(sys_->machine_->cost().CompareCost(bytes));
}

sim::Cycles Proc::Now() const { return sys_->machine_->engine().now(); }

void Proc::Yield() { sys_->kernel_->SysYield(); }

}  // namespace exo::os
