// UnixEnv: the POSIX-ish process interface applications are written against.
//
// The unmodified UNIX applications of Sections 6 and 8 (cp, gzip, pax, diff, gcc,
// ...) are coded once against this interface and run unchanged on every OS
// configuration — Xok/ExOS (where these calls are mostly library procedure calls
// into the libOS) and the BSD kernels (where each call is a kernel crossing).
#ifndef EXO_EXOS_UNIX_ENV_H_
#define EXO_EXOS_UNIX_ENV_H_

#include <functional>
#include <string>
#include <vector>

#include "fs/fs_api.h"
#include "sim/engine.h"
#include "sim/status.h"

namespace exo::os {

class UnixEnv {
 public:
  virtual ~UnixEnv() = default;

  // ---- Identity ----
  virtual int GetPid() = 0;  // charged per flavor (Sec. 7.1's microbenchmark)
  virtual uint16_t Uid() const = 0;

  // ---- Files ----
  virtual Result<int> Open(const std::string& path, bool create = false) = 0;
  virtual Status Close(int fd) = 0;
  virtual Result<uint32_t> Read(int fd, std::span<uint8_t> out) = 0;
  virtual Result<uint32_t> Write(int fd, std::span<const uint8_t> data) = 0;
  virtual Result<uint64_t> Seek(int fd, uint64_t off) = 0;
  virtual Result<fs::FileStat> Stat(const std::string& path) = 0;
  virtual Result<fs::FileStat> FStat(int fd) = 0;
  virtual Result<std::vector<fs::DirEnt>> ReadDir(const std::string& path) = 0;
  virtual Status Mkdir(const std::string& path) = 0;
  virtual Status Unlink(const std::string& path) = 0;
  virtual Status Rename(const std::string& from, const std::string& to) = 0;
  virtual Status Sync() = 0;

  // ---- Pipes ----
  // Returns {read_fd, write_fd}. The descriptor table is shared (ExOS keeps it in
  // shared memory, Sec. 5.2.1), so a spawned child uses the same fd numbers.
  virtual Result<std::pair<int, int>> Pipe() = 0;

  // ---- Processes ----
  // fork+exec of `program` (a /bin binary name; drives the fork/exec cost model and
  // demand-loads the binary through the file cache). The body runs as the child.
  virtual Result<int> Spawn(const std::string& program,
                            std::function<void(UnixEnv&)> body) = 0;
  // fork without exec: the child runs `body` in a copy of this address space.
  virtual Result<int> Fork(std::function<void(UnixEnv&)> body) = 0;
  virtual Result<int> Wait(int pid) = 0;
  // Waits for ANY child to exit; returns its pid (kNotFound if no children).
  virtual Result<int> WaitAny() = 0;

  // ---- CPU ----
  // Burns computation (simulated cycles).
  virtual void Compute(sim::Cycles cycles) = 0;
  // Charges the cost of the CPU touching `bytes` of data (scanning/word counting).
  virtual void TouchData(uint64_t bytes) = 0;
  virtual sim::Cycles Now() const = 0;

  // Yield the CPU voluntarily.
  virtual void Yield() = 0;
};

}  // namespace exo::os

#endif  // EXO_EXOS_UNIX_ENV_H_
