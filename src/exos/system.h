// System: one booted operating system on one simulated machine.
//
// Four flavors reproduce the paper's comparison matrix (Sec. 6):
//   kXokExos     — Xok exokernel + ExOS libOS + C-FFS-over-XN (libFS).
//   kOpenBsdCffs — monolithic kernel, C-FFS in the kernel, small fixed buffer cache.
//   kOpenBsd     — monolithic kernel, FFS (sync metadata), small fixed buffer cache.
//   kFreeBsd     — monolithic kernel, FFS, unified buffer cache.
//
// All flavors share the scheduling substrate (environments on fibers, round-robin
// slices — both kernels schedule the same way); what differs is everything the paper
// varies: where the file system runs and how it is protected, per-syscall overhead,
// pipe implementations, fork cost, and buffer-cache policy.
//
// ExOS specifics implemented here per Sec. 5.2.1:
//   - the file-descriptor table and process map live in shared state; in protected
//     mode every write to them is preceded by three system calls (the Sec. 6.3
//     accounting of not-yet-protected abstractions);
//   - pipes come in the two Table 2 variants: shared-memory (trusting) and
//     software-region-based with a downloaded wakeup predicate on every read;
//   - fork is a libOS routine that rebuilds the child's address space through
//     batched page-table syscalls (Xok environments cannot share page tables, which
//     is why ExOS fork costs ~6 ms, Sec. 6.2).
#ifndef EXO_EXOS_SYSTEM_H_
#define EXO_EXOS_SYSTEM_H_

#include <deque>
#include <map>
#include <memory>
#include <string>

#include "exos/unix_env.h"
#include "fs/cffs.h"
#include "fs/ffs.h"
#include "fs/fs_api.h"
#include "fs/kernel_backend.h"
#include "fs/xn_backend.h"
#include "hw/machine.h"
#include "xn/xn.h"
#include "xok/kernel.h"

namespace exo::os {

enum class Flavor { kXokExos, kOpenBsdCffs, kOpenBsd, kFreeBsd };

const char* FlavorName(Flavor f);

struct SystemOptions {
  // ExOS: charge 3 syscalls before each shared-state write (Sec. 6.3); on by
  // default so base measurements estimate a fully protected ExOS, as in the paper.
  bool protected_shared_state = true;
  // ExOS pipes: software regions + wakeup predicate per read (Table 2 "Protection")
  // versus shared memory (Table 2 "Shared memory").
  bool protected_pipes = false;
  // Skip XN entirely (Sec. 6.3 measures the workload "without XN or the extra
  // system calls"): C-FFS then runs on a trusted kernel backend even under ExOS.
  bool disable_xn = false;
  // OpenBSD's small non-unified buffer cache, in blocks (FreeBSD passes 0=unified).
  uint32_t bsd_cache_blocks = 1600;  // ~6.4 MB of the 64 MB machine
  uint32_t writeback_threshold = 1024;
};

// Program metadata driving exec (binary size => demand-load and map costs) and fork
// (address-space size => COW setup costs).
struct ProgramImage {
  uint32_t text_kb = 40;
  uint32_t data_kb = 64;
  uint32_t pages() const { return (text_kb + data_kb) / 4 + 16; }  // +stack
};

class Proc;

class System {
 public:
  System(hw::Machine* machine, Flavor flavor, const SystemOptions& options = {});
  ~System();

  System(const System&) = delete;
  System& operator=(const System&) = delete;

  // Formats the disk, mounts the flavor's file system, installs /bin binaries.
  Status Boot();

  // Spawns a top-level process (no parent); body runs when Run() schedules it.
  int SpawnInit(const std::string& program, std::function<void(UnixEnv&)> body);
  // Drives the machine until every process has exited.
  void Run();

  // Sets the process's CPU weight for the stride scheduler (host-context
  // supervisor knob; the rest of the quota is preserved). kNotFound for a pid
  // that never existed or already exited.
  Status SetTickets(int pid, uint32_t tickets);

  // Process completion times for the global-performance figures (Sec. 8).
  struct ProcRecord {
    std::string program;
    sim::Cycles spawned_at = 0;
    sim::Cycles exited_at = 0;
  };
  const std::vector<ProcRecord>& proc_records() const { return proc_records_; }

  fs::FileSys& fs() { return *fsp_; }
  xok::XokKernel& kernel() { return *kernel_; }
  hw::Machine& machine() { return *machine_; }
  Flavor flavor() const { return flavor_; }
  const SystemOptions& options() const { return options_; }
  xn::Xn* xn() { return xn_.get(); }
  fs::Cffs* cffs() { return cffs_.get(); }

  // Registered program images (exec cost model); AddProgram before Boot for extras.
  void AddProgram(const std::string& name, const ProgramImage& image);
  const ProgramImage& Image(const std::string& name) const;

  uint64_t syscall_count() const;

 private:
  friend class Proc;

  struct PipeState {
    bool protected_mode = false;
    std::deque<uint8_t> buf;              // shared-memory variant
    xok::RegionId region = 0;             // protected variant: data ring
    std::vector<uint8_t> region_shadow;   // exposed window the predicate reads
    uint32_t capacity = 16384;
    uint32_t bytes = 0;  // current fill (mirrored into region_shadow[0..3])
    bool read_closed = false;
    bool write_closed = false;
    int id = 0;
  };

  struct FdEntry {
    enum class Kind : uint8_t { kFile, kPipeRead, kPipeWrite } kind = Kind::kFile;
    uint64_t handle = 0;  // FileSys handle
    uint64_t offset = 0;
    std::string path;
    int pipe = 0;
  };

  // Charged before every write to not-yet-protected shared ExOS state (Sec. 6.3).
  void TouchSharedState();
  fs::Blocker MakeBlocker();
  int NextPid() { return next_pid_++; }

  hw::Machine* machine_;
  Flavor flavor_;
  SystemOptions options_;
  uint64_t* bsd_syscall_counter_;  // cached slot: Proc::ChargeCall is hot

  std::unique_ptr<xok::XokKernel> kernel_;
  std::unique_ptr<xn::Xn> xn_;
  std::unique_ptr<fs::FsBackend> backend_;
  std::unique_ptr<fs::Cffs> cffs_;
  std::unique_ptr<fs::Ffs> ffs_;
  std::unique_ptr<fs::FileSys> fs_;
  fs::FileSys* fsp_ = nullptr;

  // Shared ExOS state (fd table, process map, pipes). On a real ExOS these live in
  // shared memory / software regions; writes are charged via TouchSharedState.
  std::map<int, FdEntry> fds_;
  int next_fd_ = 3;
  std::map<int, std::unique_ptr<PipeState>> pipes_;
  int next_pipe_ = 1;
  std::map<int, xok::EnvId> pid_to_env_;
  int next_pid_ = 1;

  std::map<std::string, ProgramImage> programs_;
  std::vector<ProcRecord> proc_records_;
  std::vector<std::unique_ptr<Proc>> procs_;
};

// One process's view of the system: ExOS instance linked into the process, or the
// user side of the BSD syscall interface.
class Proc : public UnixEnv {
 public:
  Proc(System* sys, int pid, xok::EnvId env, uint16_t uid, std::string program);

  int GetPid() override;
  uint16_t Uid() const override { return uid_; }
  Result<int> Open(const std::string& path, bool create) override;
  Status Close(int fd) override;
  Result<uint32_t> Read(int fd, std::span<uint8_t> out) override;
  Result<uint32_t> Write(int fd, std::span<const uint8_t> data) override;
  Result<uint64_t> Seek(int fd, uint64_t off) override;
  Result<fs::FileStat> Stat(const std::string& path) override;
  Result<fs::FileStat> FStat(int fd) override;
  Result<std::vector<fs::DirEnt>> ReadDir(const std::string& path) override;
  Status Mkdir(const std::string& path) override;
  Status Unlink(const std::string& path) override;
  Status Rename(const std::string& from, const std::string& to) override;
  Status Sync() override;
  Result<std::pair<int, int>> Pipe() override;
  Result<int> Spawn(const std::string& program, std::function<void(UnixEnv&)> body) override;
  Result<int> Fork(std::function<void(UnixEnv&)> body) override;
  Result<int> Wait(int pid) override;
  Result<int> WaitAny() override;
  void Compute(sim::Cycles cycles) override;
  void TouchData(uint64_t bytes) override;
  sim::Cycles Now() const override;
  void Yield() override;

  xok::EnvId env() const { return env_; }
  void SetEnv(xok::EnvId env) { env_ = env; }

 private:
  // Per-call overhead: a libOS procedure call on ExOS, a kernel crossing on BSD.
  void ChargeCall();
  Result<int> DoFork(const std::string& program, std::function<void(UnixEnv&)> body);
  bool IsExos() const { return sys_->flavor_ == Flavor::kXokExos; }

  Result<uint32_t> PipeRead(System::PipeState& p, std::span<uint8_t> out);
  Result<uint32_t> PipeWrite(System::PipeState& p, std::span<const uint8_t> data);

  System* sys_;
  int pid_;
  xok::EnvId env_;
  uint16_t uid_;
  std::string program_;
};

}  // namespace exo::os

#endif  // EXO_EXOS_SYSTEM_H_
