// Machine: one simulated host (CPU + memory + disks + NICs) sharing a global Engine.
//
// Multiple machines (e.g. an HTTP server and its load-generating clients) share one
// Engine so their clocks agree; each has private memory, disks, and NICs.
#ifndef EXO_HW_MACHINE_H_
#define EXO_HW_MACHINE_H_

#include <cstdint>
#include <cstdlib>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "hw/disk.h"
#include "hw/nic.h"
#include "hw/phys_mem.h"
#include "sim/cost_model.h"
#include "sim/counters.h"
#include "sim/engine.h"
#include "sim/rng.h"
#include "trace/trace.h"

namespace exo::hw {

struct MachineConfig {
  uint32_t mem_frames = 16384;  // 64 MB, matching the paper's testbed
  std::vector<DiskGeometry> disks = {DiskGeometry{}};
  uint32_t num_nics = 1;
  sim::CostModel cost = sim::CostModel::PentiumPro200();
  uint64_t seed = 1;
};

class Machine {
 public:
  explicit Machine(sim::Engine* engine, const MachineConfig& config = MachineConfig{})
      : engine_(engine), cost_(config.cost), mem_(config.mem_frames), rng_(config.seed) {
    disks_.reserve(config.disks.size());
    for (const auto& g : config.disks) {
      disks_.push_back(std::make_unique<Disk>(engine_, &mem_, g, cost_.cpu_mhz));
      disks_.back()->SetTracer(
          &tracer_, tracer_.NewTrack("disk" + std::to_string(disks_.size() - 1)));
      disks_.back()->AttachCounters(&counters_);
      // EXO_DISK_INTEGRITY=1 arms the per-block checksum sidecar fleet-wide
      // without touching bench code; unset (or "0") keeps the exact seed-era
      // byte-for-byte behavior.
      const char* integ = std::getenv("EXO_DISK_INTEGRITY");
      if (integ != nullptr && integ[0] != '\0' && !(integ[0] == '0' && integ[1] == '\0')) {
        disks_.back()->EnableIntegrity();
      }
    }
    nics_.reserve(config.num_nics);
    for (uint32_t i = 0; i < config.num_nics; ++i) {
      nics_.push_back(std::make_unique<Nic>(i));
      nics_.back()->AttachCounters(&counters_);
    }
    // The engine is shared across machines; the first machine's tracer carries
    // its dispatch instants.
    if (engine_->tracer() == nullptr) {
      engine_->set_tracer(&tracer_, tracer_.NewTrack("engine"));
    }
  }

  ~Machine() {
    if (engine_->tracer() == &tracer_) {
      engine_->set_tracer(nullptr);  // the engine may outlive this machine
    }
  }

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  sim::Engine& engine() { return *engine_; }
  const sim::CostModel& cost() const { return cost_; }
  PhysMem& mem() { return mem_; }
  Disk& disk(size_t i = 0) { return *disks_.at(i); }
  size_t num_disks() const { return disks_.size(); }
  Nic& nic(size_t i = 0) { return *nics_.at(i); }
  size_t num_nics() const { return nics_.size(); }
  sim::Counters& counters() { return counters_; }
  // The machine's tracer (disabled until Tracer::Enable); disks and the shared
  // engine are pre-wired to it, the kernel and OS layers pick it up at boot.
  trace::Tracer& tracer() { return tracer_; }
  sim::Rng& rng() { return rng_; }

  // Charges CPU computation: advances the shared clock, firing any due device events
  // along the way.
  void Charge(sim::Cycles cycles) { engine_->Advance(cycles); }

  // Stamps this machine with its cluster-wide id: counter names and trace
  // track/histogram names gain an "m<id>." prefix so merged fleet output
  // attributes unambiguously (docs/CLUSTER.md). Cached counter handles and
  // track ids stay valid — slots and tracks are renamed in place. Standalone
  // machines never call this, keeping single-machine output byte-identical.
  void SetClusterIdentity(uint32_t id) {
    cluster_id_ = id;
    const std::string prefix = "m" + std::to_string(id) + ".";
    counters_.SetPrefix(prefix);
    tracer_.SetNamePrefix(prefix);
  }
  static constexpr uint32_t kNoClusterId = UINT32_MAX;
  uint32_t cluster_id() const { return cluster_id_; }

  // ---- Crash/reboot lifecycle ----
  //
  // Kill models a hard power loss: every NIC goes down (DMA rings cleared,
  // arrivals drop, transmits refuse), every disk takes a power cut (in-flight
  // requests torn exactly like the PR-6 crash model), and the kill listeners
  // run so software layers (TCP stack, HTTP server, kernel envs) can drop
  // volatile state. The Machine object itself stays alive as a zombie — any
  // already-scheduled engine events against it must find coherent (empty)
  // state, not freed memory.
  //
  // Reboot restores power: disks come back with their surviving media image
  // (the reboot listeners are where fsck/XN recovery runs), NICs come up, and
  // higher layers rebuild themselves from the listeners. Kill on a dead
  // machine and reboot on a live one are no-ops, so schedules shrunk by ddmin
  // (which may orphan a reboot) still replay cleanly.
  bool alive() const { return alive_; }
  void Kill() {
    if (!alive_) {
      return;
    }
    alive_ = false;
    for (auto& n : nics_) {
      n->SetUp(false);
    }
    for (auto& d : disks_) {
      d->PowerCut();
    }
    for (auto& fn : kill_listeners_) {
      fn();
    }
  }
  void Reboot() {
    if (alive_) {
      return;
    }
    alive_ = true;
    for (auto& d : disks_) {
      d->PowerRestore();
    }
    for (auto& n : nics_) {
      n->SetUp(true);
    }
    for (auto& fn : reboot_listeners_) {
      fn();
    }
  }
  // Listeners run in registration order, kill first-registered-first (kernel
  // below stack below server is the natural order) — keep registration
  // deterministic.
  void AddKillListener(std::function<void()> fn) {
    kill_listeners_.push_back(std::move(fn));
  }
  void AddRebootListener(std::function<void()> fn) {
    reboot_listeners_.push_back(std::move(fn));
  }

 private:
  sim::Engine* engine_;
  sim::CostModel cost_;
  PhysMem mem_;
  std::vector<std::unique_ptr<Disk>> disks_;
  std::vector<std::unique_ptr<Nic>> nics_;
  sim::Counters counters_;
  trace::Tracer tracer_;
  sim::Rng rng_;
  uint32_t cluster_id_ = kNoClusterId;
  bool alive_ = true;
  std::vector<std::function<void()>> kill_listeners_;
  std::vector<std::function<void()>> reboot_listeners_;
};

}  // namespace exo::hw

#endif  // EXO_HW_MACHINE_H_
