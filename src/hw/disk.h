// Positional disk model with request queuing, merging, and C-LOOK scheduling.
//
// Modeled after the paper's Quantum Atlas XP32150 SCSI drive: a seek curve, true
// rotational position (the platter keeps spinning in simulated time, so sequential
// layout genuinely avoids rotational delay), and a fixed media transfer rate. This is
// the mechanism behind the C-FFS and XCP results: fewer, larger, better-ordered
// requests take less time, and the model rewards exactly that.
//
// The disk stores real bytes. DMA moves data directly between the block store and
// physical-memory frames without charging CPU copy cost (the paper's "zero-touch"
// property, Sec. 7.2).
#ifndef EXO_HW_DISK_H_
#define EXO_HW_DISK_H_

#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <set>
#include <span>
#include <utility>
#include <vector>

#include "hw/phys_mem.h"
#include "sim/counters.h"
#include "sim/engine.h"
#include "sim/fault.h"
#include "sim/status.h"
#include "trace/trace.h"

namespace exo::hw {

using BlockId = uint32_t;
constexpr uint32_t kBlockSize = kPageSize;  // one disk block caches in one page (Fig. 1)
constexpr BlockId kInvalidBlock = 0xffffffff;

// CRC-32 (reflected, poly 0xEDB88320) over a byte span — the checksum the
// integrity sidecar stamps per block and XN re-verifies on read.
uint32_t Crc32(std::span<const uint8_t> bytes);

// Verdict of CheckBlock against the integrity sidecar (see EnableIntegrity).
enum class BlockIntegrity {
  kOk,
  kUnreadable,   // latent sector error: reads fail until the block is rewritten
  kBadChecksum,  // media bytes no longer match the stamped CRC (rot / lost write)
  kMisdirected,  // tag says these bytes were destined for a different LBA
};

struct DiskGeometry {
  uint32_t num_blocks = 16384;       // 64 MB default; benches size this up
  uint32_t blocks_per_track = 32;    // 128 KB per track
  uint32_t tracks_per_cylinder = 8;  // 1 MB per cylinder
  double rpm = 7200.0;
  double min_seek_ms = 1.2;          // adjacent-cylinder seek
  double max_seek_ms = 16.0;         // full-stroke seek
  double transfer_mb_per_s = 8.0;    // media rate
  double controller_overhead_us = 300.0;  // per-request command processing

  uint32_t blocks_per_cylinder() const { return blocks_per_track * tracks_per_cylinder; }
  uint32_t num_cylinders() const {
    return (num_blocks + blocks_per_cylinder() - 1) / blocks_per_cylinder();
  }
};

struct DiskRequest {
  bool write = false;
  BlockId start = 0;
  uint32_t nblocks = 0;
  // One frame per block; DMA target (read) or source (write). May be empty for
  // model-only transfers (not used by the OS layers, but handy in tests).
  std::vector<FrameId> frames;
  std::function<void(Status)> done;
};

struct DiskStats {
  uint64_t requests = 0;
  uint64_t merged_requests = 0;
  uint64_t seeks = 0;              // requests that required head movement
  uint64_t blocks_read = 0;
  uint64_t blocks_written = 0;
  uint64_t io_errors = 0;          // injected request failures surfaced to callers
  uint64_t rejected_requests = 0;  // malformed submissions completed with an error
  uint64_t torn_blocks = 0;        // blocks of the in-flight write lost to power cuts
  uint64_t lost_blocks = 0;        // acked writes that never reached the media
  uint64_t misdirected_blocks = 0; // writes that landed at the wrong LBA
  uint64_t rotted_blocks = 0;      // persistent bit flips surfaced by reads
  uint64_t latent_errors = 0;      // reads failed by latent sector errors
  sim::Cycles busy_cycles = 0;
};

class Disk {
 public:
  Disk(sim::Engine* engine, PhysMem* mem, const DiskGeometry& geometry, uint32_t cpu_mhz);

  // Queues a request. Contiguous same-direction requests already in the queue are
  // merged (the paper notes the driver merges concurrent XCP schedules, Sec. 7.2).
  // Malformed requests (zero length, out of range, frame-count mismatch) complete
  // asynchronously with kInvalidArgument instead of aborting the simulation. While
  // power is off, requests are silently swallowed: a dead controller raises no
  // completion interrupts.
  //
  // The frame list is a true scatter-gather descriptor: one request DMAs a
  // contiguous block range to/from an arbitrary (discontiguous) set of frames,
  // with kInvalidFrame entries skipping the transfer for that block. Merge lookup
  // and C-LOOK dispatch both run against ordered indexes, so deep queues cost
  // O(log n) per decision instead of a full scan.
  void Submit(DiskRequest req);

  // Attaches (or detaches, with nullptr) a fault injector. The injector is consulted
  // once per request for I/O errors and once per durable block write for power-cut
  // scheduling; unarmed disks skip all of it behind one pointer test.
  void SetFaultInjector(sim::FaultInjector* faults) {
    faults_ = faults;
    if (faults_ != nullptr && tracer_ != nullptr) {
      faults_->AttachTracer(tracer_, engine_);  // injected faults share our timeline
    }
    if (faults_ != nullptr && counters_ != nullptr) {
      faults_->AttachCounters(counters_);  // fault.* counters on the standard surface
    }
  }
  sim::FaultInjector* fault_injector() const { return faults_; }

  // Caches `disk.rejected` (malformed submissions refused at the controller)
  // and `disk.dropped` (torn blocks: accepted writes lost to a power cut)
  // slots, per the counter convention in docs/OBSERVABILITY.md.
  void AttachCounters(sim::Counters* counters) {
    counters_ = counters;
    rejected_counter_ = counters != nullptr ? counters->Handle("disk.rejected") : nullptr;
    dropped_counter_ = counters != nullptr ? counters->Handle("disk.dropped") : nullptr;
    if (faults_ != nullptr && counters_ != nullptr) {
      faults_->AttachCounters(counters_);  // wiring is order-independent
    }
  }

  // ---- Integrity sidecar ----
  //
  // A DIF-style per-block tag {CRC-32, intended LBA} maintained out of band:
  // stamped atomically with every durable block write, never charged simulated
  // time, and invisible unless armed — so the armed-but-quiet figure runs stay
  // bit-identical. The tag is what silent media faults cannot forge: a rotted
  // block mismatches its CRC, a misdirected landing carries the wrong intended
  // LBA, and a lost write onto a never-stamped block leaves a stale tag.
  // EnableIntegrity stamps the *current* media as the trusted baseline.
  void EnableIntegrity();
  bool integrity_enabled() const { return integrity_; }

  // Verdict for one block against its tag and the latent-sector set. Host-side
  // only: charges nothing, draws nothing.
  BlockIntegrity CheckBlock(BlockId b) const;

  // Re-stamps the tag from the block's current media bytes and clears any
  // latent-sector mark: the kernel-internal RawBlock write path (superblock,
  // catalogues, repair) calls this where DMA writes stamp implicitly.
  void Restamp(BlockId b);

  // Attaches a tracer; the request lifecycle (submit, merge, dispatch,
  // seek/rotate/transfer, complete) lands in the `disk` category on `track`, and
  // per-request service time feeds the "disk.service_cycles" histogram.
  void SetTracer(trace::Tracer* tracer, uint32_t track) {
    tracer_ = tracer;
    trace_track_ = track;
    service_hist_ = tracer != nullptr ? tracer->Histogram("disk.service_cycles") : nullptr;
  }

  // Simulated power loss: the block store freezes exactly as the in-flight request
  // left it. Queued requests are lost, the active request never completes (its DMA
  // happens at completion time, so nothing of it landed), and no callbacks run.
  void PowerCut();
  // Restores power after a crash: the store contents survive, queue and head state
  // reset. Models the machine rebooting against the same platters.
  void PowerRestore();
  bool powered_off() const { return powered_off_; }

  // Convenience for tests and kernel-internal metadata I/O.
  std::span<uint8_t> RawBlock(BlockId b);
  std::span<const uint8_t> RawBlock(BlockId b) const;

  const DiskGeometry& geometry() const { return geometry_; }
  const DiskStats& stats() const { return stats_; }
  void ResetStats() { stats_ = DiskStats{}; }
  bool idle() const { return !active_ && queue_.empty(); }
  bool active() const { return active_; }
  uint32_t queue_depth() const { return static_cast<uint32_t>(queue_.size()); }

 private:
  // One integrity-sidecar entry; `intended` is the LBA the stamped write was
  // addressed to, so misdirected landings are distinguishable from rot.
  struct BlockTag {
    uint32_t crc = 0;
    BlockId intended = kInvalidBlock;
  };

  // A queued request plus its admission order; seq breaks ties exactly the way
  // queue position did when the queue was a scanned deque (merges only ever grow
  // a request at its tail, so both start and seq are stable once queued).
  struct QueuedRequest : DiskRequest {
    uint64_t seq = 0;
  };
  using QueueIter = std::list<QueuedRequest>::iterator;
  // (block, seq) -> queued request. The dispatch index keys on start block; the
  // per-direction merge indexes key on end block (one past the last block).
  using BlockIndex = std::map<std::pair<BlockId, uint64_t>, QueueIter>;

  void StartNext();
  // Makes `req` the active request and schedules its completion.
  void Dispatch(DiskRequest req);
  void Complete(DiskRequest req);
  // Index insert/erase through a node pool, so steady-state queue churn performs
  // no heap allocation (shallow queues dominate the global benches).
  void IndexInsert(BlockIndex& idx, BlockId block, uint64_t seq, QueueIter it);
  void IndexErase(BlockIndex& idx, BlockIndex::iterator it);
  // Mechanical breakdown of one service, for tracing only. The authoritative
  // completion time is ServiceTime's return value; these are cast per-phase and
  // may disagree with the total by a cycle of rounding.
  struct ServicePhases {
    sim::Cycles overhead = 0;
    sim::Cycles seek = 0;
    sim::Cycles rotate = 0;
  };
  // Cycle cost for servicing a request whose first block is `start`, given current
  // head position and rotational phase. `phases` (optional) receives the breakdown.
  sim::Cycles ServiceTime(BlockId start, uint32_t nblocks, ServicePhases* phases = nullptr);
  uint32_t CylinderOf(BlockId b) const { return b / geometry_.blocks_per_cylinder(); }
  void ClearQueue();

  sim::Engine* engine_;
  PhysMem* mem_;
  DiskGeometry geometry_;
  uint32_t cpu_mhz_;
  std::vector<uint8_t> store_;

  std::list<QueuedRequest> queue_;
  BlockIndex by_start_;       // C-LOOK dispatch: all queued requests
  BlockIndex merge_tail_[2];  // merge candidates with frames, by direction [write]
  uint64_t next_submit_seq_ = 0;
  std::list<QueuedRequest> free_queue_nodes_;          // recycled list nodes
  std::vector<BlockIndex::node_type> free_index_nodes_;  // recycled map nodes
  sim::FaultInjector* faults_ = nullptr;
  trace::Tracer* tracer_ = nullptr;
  uint32_t trace_track_ = 0;
  trace::LatencyHistogram* service_hist_ = nullptr;
  sim::Counters* counters_ = nullptr;
  sim::Counters::Slot* rejected_counter_ = nullptr;
  sim::Counters::Slot* dropped_counter_ = nullptr;
  // Media state that survives power cycles and injector detach: latent-bad
  // sectors stay unreadable, tags stay stamped — they model the platter, not
  // the injector's bookkeeping.
  bool integrity_ = false;
  std::vector<BlockTag> tags_;
  std::set<BlockId> latent_bad_;
  bool powered_off_ = false;
  uint64_t power_epoch_ = 0;  // completions scheduled before a cut are invalidated
  bool active_ = false;
  uint32_t head_cylinder_ = 0;
  BlockId last_block_end_ = 0;  // block just past the previous transfer (detect sequential)
  DiskStats stats_;
};

}  // namespace exo::hw

#endif  // EXO_HW_DISK_H_
