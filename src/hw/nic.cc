#include "hw/nic.h"

#include <algorithm>
#include <utility>

namespace exo::hw {

bool Nic::Transmit(Packet p) {
  EXO_CHECK(link_ != nullptr);
  EXO_CHECK_LE(p.bytes.size(), kMaxFrameBytes);
  if (!up_) {
    ++stats_.tx_rejected;
    if (rejected_counter_ != nullptr) {
      ++*rejected_counter_;
    }
    return false;
  }
  if (tx_slots_ != 0 && tx_in_ring_ >= tx_slots_) {
    // Ring full: refuse at the door. The frame was never accepted, so this is
    // backpressure (`nic.rejected`), not loss.
    ++stats_.tx_rejected;
    if (rejected_counter_ != nullptr) {
      ++*rejected_counter_;
    }
    if (tracer_ != nullptr && tracer_->enabled(trace::Category::kNet)) {
      tracer_->Instant(trace::Category::kNet, trace_track_, "nic.tx_reject",
                       link_->engine_for(this)->now(), p.bytes.size());
    }
    return false;
  }
  ++stats_.tx_packets;
  stats_.tx_bytes += p.bytes.size();
  if (tx_slots_ != 0) {
    ++tx_in_ring_;
    const sim::Cycles done = link_->Send(this, std::move(p));
    link_->engine_for(this)->ScheduleAt(done, [this] {
      if (tx_in_ring_ > 0) {
        --tx_in_ring_;
      }
    });
  } else {
    link_->Send(this, std::move(p));
  }
  return true;
}

void Nic::Deliver(Packet p) {
  if (!up_) {
    // The host is dead: frames already on the wire arrive at silicon nobody
    // powers. The sender paid for the wire, so this is loss, not backpressure.
    ++stats_.dropped;
    if (dropped_counter_ != nullptr) {
      ++*dropped_counter_;
    }
    return;
  }
  if (probe_responder_ && !p.bytes.empty() && p.bytes[0] == kProbeProto &&
      p.bytes.size() >= kProbeFrameBytes) {
    // Firmware echo: account the rx, swap prober/destination ips, and send the
    // same frame back. Runs before the host handler — liveness needs no stack.
    ++stats_.rx_packets;
    stats_.rx_bytes += p.bytes.size();
    for (size_t i = 1; i <= 4; ++i) {
      std::swap(p.bytes[i], p.bytes[i + 4]);
    }
    Transmit(std::move(p));
    return;
  }
  if (rx_slots_ != 0 && rx_in_ring_ >= rx_slots_) {
    // Every rx descriptor is held by the host: the frame has nowhere to land.
    // Unlike a tx refusal the sender already paid for the wire, so this is loss.
    ++stats_.dropped;
    ++stats_.rx_overflows;
    if (dropped_counter_ != nullptr) {
      ++*dropped_counter_;
    }
    if (tracer_ != nullptr && tracer_->enabled(trace::Category::kFault)) {
      tracer_->Instant(trace::Category::kFault, trace_track_, "nic.rx_overflow",
                       link_->engine_for(this)->now(), p.bytes.size());
    }
    return;
  }
  ++stats_.rx_packets;
  stats_.rx_bytes += p.bytes.size();
  if (rx_handler_) {
    if (rx_slots_ != 0) {
      ++rx_in_ring_;
    }
    rx_handler_(std::move(p));
  } else {
    ++stats_.dropped;
    if (dropped_counter_ != nullptr) {
      ++*dropped_counter_;
    }
  }
}

sim::Cycles Link::Send(Nic* from, Packet p) {
  EXO_CHECK(from == a_ || from == b_);
  Nic* to = from == a_ ? b_ : a_;
  Direction& dir = from == a_ ? dir_ab_ : dir_ba_;

  const uint64_t wire_bytes =
      std::max<uint64_t>(p.bytes.size(), kMinFrameBytes) + kFrameWireOverhead;
  const sim::Cycles serialize =
      static_cast<sim::Cycles>(static_cast<double>(wire_bytes) * cycles_per_byte_);

  const sim::Cycles start = std::max(engine_->now(), dir.busy_until);
  dir.busy_until = start + serialize;
  const sim::Cycles arrival = dir.busy_until + latency_cycles_;

  const bool tracing = tracer_ != nullptr && tracer_->enabled(trace::Category::kNet);
  if (tracing) {
    // Serialization windows per direction never overlap (start >= prior busy_until).
    tracer_->Begin(trace::Category::kNet, dir.track, "wire", start, wire_bytes);
    tracer_->End(trace::Category::kNet, dir.track, "wire", dir.busy_until, wire_bytes);
  }

  if (faults_ != nullptr) {
    switch (faults_->NextWireFate(p.bytes.size())) {
      case sim::FaultInjector::WireFate::kDrop:
        return dir.busy_until;  // wire time was consumed, but the frame never arrives
      case sim::FaultInjector::WireFate::kCorrupt:
        p.bytes[faults_->CorruptionOffset()] ^= 0xff;
        break;
      case sim::FaultInjector::WireFate::kDuplicate: {
        // The duplicate trails the original by one serialization slot, as if the
        // sender's retransmit logic fired spuriously.
        Packet copy = p;
        dir.busy_until += serialize;
        if (tracing) {
          tracer_->Begin(trace::Category::kNet, dir.track, "wire_dup",
                         dir.busy_until - serialize, wire_bytes);
          tracer_->End(trace::Category::kNet, dir.track, "wire_dup", dir.busy_until,
                       wire_bytes);
        }
        engine_->ScheduleAt(dir.busy_until + latency_cycles_,
                            [to, copy = std::move(copy)]() mutable {
          to->Deliver(std::move(copy));
        });
        break;
      }
      case sim::FaultInjector::WireFate::kDeliver:
        break;
    }
  }

  if (tracing) {
    tracer_->Instant(trace::Category::kNet, dir.track, "arrive", arrival, wire_bytes);
  }
  engine_->ScheduleAt(arrival, [to, p = std::move(p)]() mutable { to->Deliver(std::move(p)); });
  return dir.busy_until;
}

}  // namespace exo::hw
