// Network interface and point-to-point link with a bandwidth/latency wire model.
//
// Modeled after the paper's testbed of 100-Mbit/s Ethernets (the Cheetah experiment
// uses three of them, Sec. 7.3). Each direction of a link serializes frames at the wire
// rate, so per-packet overheads and total bytes on the wire are both first-class: the
// two quantities Cheetah's packet-merging and zero-copy optimizations attack.
#ifndef EXO_HW_NIC_H_
#define EXO_HW_NIC_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include <string>

#include "sim/counters.h"
#include "sim/engine.h"
#include "sim/fault.h"
#include "trace/trace.h"

namespace exo::cluster {
class Cluster;
}  // namespace exo::cluster

namespace exo::hw {

struct Packet {
  std::vector<uint8_t> bytes;
};

// Ethernet-ish frame bounds; the wire model charges at least min_frame_bytes.
constexpr uint32_t kMaxFrameBytes = 1514;
constexpr uint32_t kMinFrameBytes = 64;
constexpr uint32_t kFrameWireOverhead = 24;  // preamble + FCS + inter-frame gap

// Health-probe frame: byte 0 carries this protocol tag (disjoint from the
// TCP/UDP tags in net/packet.h), bytes 1..4 the prober's ip, bytes 5..8 the
// destination ip, bytes 9..16 a little-endian probe sequence. A NIC with the
// probe responder armed echoes the frame with the ips swapped — firmware-level
// liveness, deliberately below the TCP stack so a wedged or killed host stays
// silent exactly like dead hardware.
constexpr uint8_t kProbeProto = 0xEE;
constexpr uint32_t kProbeFrameBytes = 17;

struct NicStats {
  uint64_t tx_packets = 0;
  uint64_t rx_packets = 0;
  uint64_t tx_bytes = 0;
  uint64_t rx_bytes = 0;
  // Frames lost after the NIC accepted responsibility: rx-ring overflow, or
  // arrival with no receive handler installed.
  uint64_t dropped = 0;
  // Frames refused at the tx ring (ring full): the host keeps the buffer and
  // can retry — backpressure, not loss.
  uint64_t tx_rejected = 0;
  uint64_t rx_overflows = 0;  // the rx-ring-full subset of `dropped`
};

class Link;

class Nic {
 public:
  explicit Nic(uint32_t id) : id_(id) {}

  uint32_t id() const { return id_; }

  // The kernel installs the receive handler; it runs at packet arrival time and
  // performs demultiplexing (packet filters on Xok, in-kernel protocol input on BSD).
  void SetReceiveHandler(std::function<void(Packet)> handler) {
    rx_handler_ = std::move(handler);
  }

  // Opt-in DMA ring bounds, in frames. 0 = unbounded (the historic model: the
  // wire itself is the only queue). With a tx bound, Transmit refuses frames
  // while `tx_slots` are still serializing — backpressure the host observes.
  // With an rx bound, arriving frames are dropped while `rx_slots` are held by
  // the host; the host returns a slot with RxRelease when it has consumed the
  // frame (e.g. at the TCP stack's rx-processing completion time).
  void ConfigureRings(uint32_t tx_slots, uint32_t rx_slots) {
    tx_slots_ = tx_slots;
    rx_slots_ = rx_slots;
  }
  void RxRelease() {
    if (rx_in_ring_ > 0) {
      --rx_in_ring_;
    }
  }
  uint32_t rx_in_ring() const { return rx_in_ring_; }
  uint32_t tx_in_ring() const { return tx_in_ring_; }

  // Queues a frame for transmission on the attached link. Returns false (frame
  // refused, `nic.rejected`) when a configured tx ring is full.
  bool Transmit(Packet p);

  void AttachLink(Link* link) { link_ = link; }
  Link* link() const { return link_; }

  // Caches `nic.rejected` / `nic.dropped` slots (docs/OBSERVABILITY.md).
  void AttachCounters(sim::Counters* counters) {
    rejected_counter_ = counters != nullptr ? counters->Handle("nic.rejected") : nullptr;
    dropped_counter_ = counters != nullptr ? counters->Handle("nic.dropped") : nullptr;
  }

  // Attaches a tracer: tx refusals become `net` instants (`nic.tx_reject`),
  // rx-ring overflows `fault` instants (`nic.rx_overflow`) on the named track.
  void AttachTracer(trace::Tracer* tracer, const std::string& name) {
    tracer_ = tracer;
    if (tracer_ != nullptr) {
      trace_track_ = tracer_->NewTrack(name);
    }
  }

  const NicStats& stats() const { return stats_; }
  void ResetStats() { stats_ = NicStats{}; }

  // Power state. Downing the NIC (machine kill) clears both DMA rings: the
  // frames they held are gone with the machine's memory. While down, Transmit
  // refuses (`nic.rejected`) and arrivals drop on the floor (`nic.dropped`) —
  // the wire itself keeps working, the host on this end does not.
  void SetUp(bool up) {
    up_ = up;
    if (!up_) {
      tx_in_ring_ = 0;
      rx_in_ring_ = 0;
    }
  }
  bool up() const { return up_; }

  // Arms the probe responder: kProbeProto frames are echoed (ips swapped)
  // straight from Deliver, before the host receive handler. Dead NICs stay
  // silent, which is what makes the echo a liveness signal.
  void EnableProbeResponder() { probe_responder_ = true; }

 private:
  friend class Link;
  // The cluster fabric delivers cross-shard arrivals at the receiving shard's
  // horizon, outside any Link::Send call.
  friend class cluster::Cluster;
  void Deliver(Packet p);

  uint32_t id_;
  Link* link_ = nullptr;
  std::function<void(Packet)> rx_handler_;
  NicStats stats_;
  uint32_t tx_slots_ = 0;
  uint32_t rx_slots_ = 0;
  uint32_t tx_in_ring_ = 0;
  uint32_t rx_in_ring_ = 0;
  bool up_ = true;
  bool probe_responder_ = false;
  sim::Counters::Slot* rejected_counter_ = nullptr;
  sim::Counters::Slot* dropped_counter_ = nullptr;
  trace::Tracer* tracer_ = nullptr;
  uint32_t trace_track_ = 0;
};

// Full-duplex point-to-point wire. Each direction is an independent serialization
// queue: a frame occupies the wire for (bytes + overhead) * 8 / bandwidth and arrives
// at the far side after an additional propagation latency.
//
// Send and engine_for are virtual so the cluster fabric (cluster::ShardLink)
// can reuse the NIC interface while serializing each direction on its own
// shard's clock and delivering arrivals through the conservative-horizon
// mailbox instead of this engine's queue.
class Link {
 public:
  Link(sim::Engine* engine, double mbit_per_s, double latency_us, uint32_t cpu_mhz)
      : engine_(engine),
        cycles_per_byte_(static_cast<double>(cpu_mhz) * 8.0 / mbit_per_s),
        latency_cycles_(static_cast<sim::Cycles>(latency_us * cpu_mhz)) {}
  virtual ~Link() = default;

  void Connect(Nic* a, Nic* b) {
    a_ = a;
    b_ = b;
    a->AttachLink(this);
    b->AttachLink(this);
  }

  // Serializes a frame onto the wire; returns the serialization-complete time
  // (when a tx-ring slot, if configured, is handed back to the host).
  virtual sim::Cycles Send(Nic* from, Packet p);

  // The engine carrying `side`'s events (ring bookkeeping, tracer stamps).
  // One engine serves both sides of a plain link; a cross-shard link returns
  // the shard engine that owns that side.
  virtual sim::Engine* engine_for(const Nic* side) const { return engine_; }

  // Attaches (or detaches, with nullptr) a fault injector consulted once per frame
  // for drop/corrupt/duplicate; unarmed links skip it behind one pointer test.
  void SetFaultInjector(sim::FaultInjector* faults) {
    faults_ = faults;
    if (faults_ != nullptr && tracer_ != nullptr) {
      faults_->AttachTracer(tracer_, engine_);  // injected fates share our timeline
    }
  }
  sim::FaultInjector* fault_injector() const { return faults_; }

  // Attaches a tracer; each direction gets its own track (`name`.a2b / `name`.b2a)
  // carrying `net` wire-occupancy spans and arrival instants.
  void AttachTracer(trace::Tracer* tracer, const std::string& name) {
    tracer_ = tracer;
    if (tracer_ != nullptr) {
      dir_ab_.track = tracer_->NewTrack(name + ".a2b");
      dir_ba_.track = tracer_->NewTrack(name + ".b2a");
      if (faults_ != nullptr) {
        faults_->AttachTracer(tracer_, engine_);
      }
    }
  }

  sim::Engine* engine() const { return engine_; }

  double utilization_tx_a() const { return 0; }  // reserved for future instrumentation

 protected:
  struct Direction {
    sim::Cycles busy_until = 0;
    uint32_t track = 0;
  };

  sim::Engine* engine_;
  double cycles_per_byte_;
  sim::Cycles latency_cycles_;
  sim::FaultInjector* faults_ = nullptr;
  trace::Tracer* tracer_ = nullptr;
  Nic* a_ = nullptr;
  Nic* b_ = nullptr;
  Direction dir_ab_;
  Direction dir_ba_;
};

}  // namespace exo::hw

#endif  // EXO_HW_NIC_H_
