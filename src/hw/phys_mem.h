// Simulated physical memory: an array of 4-KB frames holding real bytes.
//
// PhysMem is "hardware": it provides storage and a free list but no protection.
// Ownership, capabilities, and revocation policy are the kernel's job (xok/ or bsd/).
// Frame contents are real so that file systems, pipes, and network buffers move actual
// data and correctness is testable end to end.
#ifndef EXO_HW_PHYS_MEM_H_
#define EXO_HW_PHYS_MEM_H_

#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "sim/check.h"
#include "sim/status.h"

namespace exo::hw {

using FrameId = uint32_t;
constexpr uint32_t kPageSize = 4096;
constexpr FrameId kInvalidFrame = 0xffffffff;

class PhysMem {
 public:
  explicit PhysMem(uint32_t num_frames)
      : data_(static_cast<size_t>(num_frames) * kPageSize, 0),
        refcount_(num_frames, 0) {
    free_list_.reserve(num_frames);
    // Hand out low frames first so traces are stable.
    for (FrameId f = num_frames; f > 0; --f) {
      free_list_.push_back(f - 1);
    }
  }

  uint32_t num_frames() const { return static_cast<uint32_t>(refcount_.size()); }
  uint32_t free_frames() const { return static_cast<uint32_t>(free_list_.size()); }

  // Allocates one frame with refcount 1. Contents are NOT zeroed (zeroing is a
  // software policy the kernel charges for explicitly).
  Result<FrameId> Alloc() {
    if (free_list_.empty()) {
      return Status::kOutOfResources;
    }
    FrameId f = free_list_.back();
    free_list_.pop_back();
    refcount_[f] = 1;
    return f;
  }

  // Increments the sharing count (e.g. copy-on-write mappings).
  void Ref(FrameId f) {
    EXO_CHECK_GT(refcount_.at(f), 0u);
    ++refcount_[f];
  }

  // Decrements the count; frees the frame when it reaches zero.
  void Unref(FrameId f) {
    EXO_CHECK_GT(refcount_.at(f), 0u);
    if (--refcount_[f] == 0) {
      free_list_.push_back(f);
    }
  }

  uint32_t refcount(FrameId f) const { return refcount_.at(f); }
  bool allocated(FrameId f) const { return refcount_.at(f) > 0; }

  std::span<uint8_t> Data(FrameId f) {
    EXO_CHECK_LT(f, num_frames());
    return std::span<uint8_t>(data_.data() + static_cast<size_t>(f) * kPageSize, kPageSize);
  }
  std::span<const uint8_t> Data(FrameId f) const {
    EXO_CHECK_LT(f, num_frames());
    return std::span<const uint8_t>(data_.data() + static_cast<size_t>(f) * kPageSize,
                                    kPageSize);
  }

  void CopyFrame(FrameId dst, FrameId src) {
    std::memcpy(Data(dst).data(), Data(src).data(), kPageSize);
  }
  void ZeroFrame(FrameId f) { std::memset(Data(f).data(), 0, kPageSize); }

 private:
  std::vector<uint8_t> data_;
  std::vector<uint32_t> refcount_;
  std::vector<FrameId> free_list_;
};

}  // namespace exo::hw

#endif  // EXO_HW_PHYS_MEM_H_
