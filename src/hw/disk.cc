#include "hw/disk.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstring>

namespace exo::hw {

uint32_t Crc32(std::span<const uint8_t> bytes) {
  // Table-driven reflected CRC-32; the table is built once on first use.
  static const auto table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  uint32_t crc = 0xFFFFFFFFu;
  for (uint8_t b : bytes) {
    crc = table[(crc ^ b) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

Disk::Disk(sim::Engine* engine, PhysMem* mem, const DiskGeometry& geometry, uint32_t cpu_mhz)
    : engine_(engine),
      mem_(mem),
      geometry_(geometry),
      cpu_mhz_(cpu_mhz),
      store_(static_cast<size_t>(geometry.num_blocks) * kBlockSize, 0) {}

void Disk::EnableIntegrity() {
  integrity_ = true;
  tags_.resize(geometry_.num_blocks);
  // Whatever is on the media right now becomes the trusted baseline.
  for (BlockId b = 0; b < geometry_.num_blocks; ++b) {
    tags_[b] = BlockTag{Crc32(RawBlock(b)), b};
  }
}

BlockIntegrity Disk::CheckBlock(BlockId b) const {
  EXO_CHECK_LT(b, geometry_.num_blocks);
  if (latent_bad_.count(b) != 0) {
    return BlockIntegrity::kUnreadable;
  }
  if (!integrity_) {
    return BlockIntegrity::kOk;
  }
  const BlockTag& tag = tags_[b];
  if (tag.intended != b) {
    return BlockIntegrity::kMisdirected;
  }
  if (tag.crc != Crc32(RawBlock(b))) {
    return BlockIntegrity::kBadChecksum;
  }
  return BlockIntegrity::kOk;
}

void Disk::Restamp(BlockId b) {
  EXO_CHECK_LT(b, geometry_.num_blocks);
  latent_bad_.erase(b);  // a rewrite remaps the sector
  if (integrity_) {
    tags_[b] = BlockTag{Crc32(RawBlock(b)), b};
  }
}

std::span<uint8_t> Disk::RawBlock(BlockId b) {
  EXO_CHECK_LT(b, geometry_.num_blocks);
  return std::span<uint8_t>(store_.data() + static_cast<size_t>(b) * kBlockSize, kBlockSize);
}

std::span<const uint8_t> Disk::RawBlock(BlockId b) const {
  EXO_CHECK_LT(b, geometry_.num_blocks);
  return std::span<const uint8_t>(store_.data() + static_cast<size_t>(b) * kBlockSize,
                                  kBlockSize);
}

void Disk::Submit(DiskRequest req) {
  if (powered_off_) {
    return;  // dead controller: no transfer, no completion interrupt
  }
  const bool malformed =
      req.nblocks == 0 ||
      static_cast<uint64_t>(req.start) + req.nblocks > geometry_.num_blocks ||
      (!req.frames.empty() && req.frames.size() != req.nblocks);
  if (malformed) {
    ++stats_.rejected_requests;
    if (rejected_counter_ != nullptr) {
      ++*rejected_counter_;
    }
    if (req.done) {
      // Complete asynchronously like any other request so callers never see a
      // callback re-enter them from inside Submit.
      engine_->ScheduleAfter(0, [done = std::move(req.done)]() {
        done(Status::kInvalidArgument);
      });
    }
    return;
  }

  if (tracer_ != nullptr && tracer_->enabled(trace::Category::kDisk)) {
    tracer_->Instant(trace::Category::kDisk, trace_track_, req.write ? "submit_w" : "submit_r",
                     engine_->now(), req.start);
  }

  // Idle disk, empty queue: nothing to merge with and no competition for the
  // head, so StartNext would pick this request immediately — skip the queue and
  // its indexes entirely. This is the common case for the shallow-queue global
  // workloads, where per-request index bookkeeping would dominate.
  if (!active_ && queue_.empty()) {
    Dispatch(std::move(req));
    return;
  }

  // Try to merge with a queued request forming one contiguous run in the same
  // direction: the merge index keys same-direction framed requests by their end
  // block, so the lookup is one lower_bound. Among several requests ending at
  // req.start the earliest-queued wins (seq orders the keys), matching the old
  // front-to-back scan. Completion callbacks are chained so every submitter is
  // notified.
  if (!req.frames.empty()) {
    BlockIndex& idx = merge_tail_[req.write ? 1 : 0];
    auto mit = idx.lower_bound({req.start, 0});
    if (mit != idx.end() && mit->first.first == req.start) {
      QueuedRequest& q = *mit->second;
      q.nblocks += req.nblocks;
      q.frames.insert(q.frames.end(), req.frames.begin(), req.frames.end());
      if (req.done) {
        auto prev = std::move(q.done);
        auto next = std::move(req.done);
        q.done = [prev = std::move(prev), next = std::move(next)](Status s) {
          if (prev) {
            prev(s);
          }
          next(s);
        };
      }
      ++stats_.merged_requests;
      if (tracer_ != nullptr && tracer_->enabled(trace::Category::kDisk)) {
        tracer_->Instant(trace::Category::kDisk, trace_track_, "merge", engine_->now(),
                         req.start);
      }
      // The merged request's tail moved: rekey it under its new end block,
      // reusing the map node in place.
      QueueIter lit = mit->second;
      auto nh = idx.extract(mit);
      nh.key() = {q.start + q.nblocks, lit->seq};
      idx.insert(std::move(nh));
      return;
    }
  }

  const uint64_t seq = next_submit_seq_++;
  if (free_queue_nodes_.empty()) {
    queue_.push_back(QueuedRequest{std::move(req), seq});
  } else {
    queue_.splice(queue_.end(), free_queue_nodes_, free_queue_nodes_.begin());
    static_cast<DiskRequest&>(queue_.back()) = std::move(req);
    queue_.back().seq = seq;
  }
  QueueIter lit = std::prev(queue_.end());
  IndexInsert(by_start_, lit->start, seq, lit);
  if (!lit->frames.empty()) {
    IndexInsert(merge_tail_[lit->write ? 1 : 0], lit->start + lit->nblocks, seq, lit);
  }
  if (!active_) {
    StartNext();
  }
}

void Disk::IndexInsert(BlockIndex& idx, BlockId block, uint64_t seq, QueueIter it) {
  if (free_index_nodes_.empty()) {
    idx.emplace(std::make_pair(block, seq), it);
    return;
  }
  auto nh = std::move(free_index_nodes_.back());
  free_index_nodes_.pop_back();
  nh.key() = {block, seq};
  nh.mapped() = it;
  idx.insert(std::move(nh));
}

void Disk::IndexErase(BlockIndex& idx, BlockIndex::iterator it) {
  free_index_nodes_.push_back(idx.extract(it));
}

sim::Cycles Disk::ServiceTime(BlockId start, uint32_t nblocks, ServicePhases* phases) {
  const double cycles_per_ms = static_cast<double>(cpu_mhz_) * 1000.0;
  double ms = geometry_.controller_overhead_us / 1000.0;
  if (phases != nullptr) {
    phases->overhead = static_cast<sim::Cycles>(ms * cycles_per_ms);
  }

  const uint32_t target_cyl = CylinderOf(start);
  const bool sequential = (start == last_block_end_) && (target_cyl == head_cylinder_);

  if (!sequential) {
    // Seek: square-root curve between adjacent-cylinder and full-stroke times.
    const uint32_t dist =
        target_cyl > head_cylinder_ ? target_cyl - head_cylinder_ : head_cylinder_ - target_cyl;
    if (dist > 0) {
      const double frac = static_cast<double>(dist) /
                          static_cast<double>(std::max(1u, geometry_.num_cylinders() - 1));
      const double seek_ms = geometry_.min_seek_ms +
                             (geometry_.max_seek_ms - geometry_.min_seek_ms) * std::sqrt(frac);
      ms += seek_ms;
      if (phases != nullptr) {
        phases->seek = static_cast<sim::Cycles>(seek_ms * cycles_per_ms);
      }
      ++stats_.seeks;
    }
    // Rotational delay: platter position is a function of simulated time, so the
    // model naturally rewards requests that land just ahead of the head.
    const double rev_ms = 60000.0 / geometry_.rpm;
    const double now_ms =
        static_cast<double>(engine_->now()) / cycles_per_ms + ms;  // when the head arrives
    const double head_angle = now_ms / rev_ms - std::floor(now_ms / rev_ms);
    const double target_angle = static_cast<double>(start % geometry_.blocks_per_track) /
                                static_cast<double>(geometry_.blocks_per_track);
    double wait = target_angle - head_angle;
    if (wait < 0) {
      wait += 1.0;
    }
    ms += wait * rev_ms;
    if (phases != nullptr) {
      phases->rotate = static_cast<sim::Cycles>(wait * rev_ms * cycles_per_ms);
    }
  }

  // Media transfer.
  const double bytes = static_cast<double>(nblocks) * kBlockSize;
  ms += bytes / (geometry_.transfer_mb_per_s * 1e6) * 1000.0;

  return static_cast<sim::Cycles>(ms * cycles_per_ms);
}

void Disk::StartNext() {
  EXO_CHECK(!active_);
  if (queue_.empty()) {
    return;
  }

  // C-LOOK: service the queued request with the smallest start block at or beyond the
  // head; wrap to the lowest start when none is ahead. The dispatch index is ordered
  // by (start, seq), so both the forward pick and the wrap are one lookup, with the
  // earliest-queued request winning among equal starts as before.
  const BlockId head_block = head_cylinder_ * geometry_.blocks_per_cylinder();
  auto bit = by_start_.lower_bound({head_block, 0});
  if (bit == by_start_.end()) {
    bit = by_start_.begin();
  }
  QueueIter lit = bit->second;
  IndexErase(by_start_, bit);
  if (!lit->frames.empty()) {
    BlockIndex& idx = merge_tail_[lit->write ? 1 : 0];
    IndexErase(idx, idx.find({lit->start + lit->nblocks, lit->seq}));
  }
  DiskRequest req = std::move(static_cast<DiskRequest&>(*lit));
  free_queue_nodes_.splice(free_queue_nodes_.end(), queue_, lit);
  Dispatch(std::move(req));
}

void Disk::Dispatch(DiskRequest req) {
  active_ = true;

  const bool tracing = tracer_ != nullptr && tracer_->enabled(trace::Category::kDisk);
  ServicePhases phases;
  const sim::Cycles service =
      ServiceTime(req.start, req.nblocks, tracing ? &phases : nullptr);
  stats_.busy_cycles += service;
  ++stats_.requests;

  if (tracing) {
    // One outer "service" span per request, with the mechanical breakdown nested
    // inside it. The phase boundaries are supplementary casts; the outer span ends
    // exactly at the authoritative completion time.
    const sim::Cycles now = engine_->now();
    tracer_->Begin(trace::Category::kDisk, trace_track_, "service", now, req.start);
    sim::Cycles t = now;
    if (phases.overhead > 0) {
      tracer_->Begin(trace::Category::kDisk, trace_track_, "overhead", t, phases.overhead);
      t += phases.overhead;
      tracer_->End(trace::Category::kDisk, trace_track_, "overhead", t, phases.overhead);
    }
    if (phases.seek > 0) {
      tracer_->Begin(trace::Category::kDisk, trace_track_, "seek", t, phases.seek);
      t += phases.seek;
      tracer_->End(trace::Category::kDisk, trace_track_, "seek", t, phases.seek);
    }
    if (phases.rotate > 0) {
      tracer_->Begin(trace::Category::kDisk, trace_track_, "rotate", t, phases.rotate);
      t += phases.rotate;
      tracer_->End(trace::Category::kDisk, trace_track_, "rotate", t, phases.rotate);
    }
    if (now + service > t) {
      tracer_->Begin(trace::Category::kDisk, trace_track_, "transfer", t, req.nblocks);
      tracer_->End(trace::Category::kDisk, trace_track_, "transfer", now + service,
                   req.nblocks);
    }
    if (service_hist_ != nullptr) {
      service_hist_->Record(service);
    }
  }

  engine_->ScheduleAfter(service,
                         [this, epoch = power_epoch_, req = std::move(req)]() mutable {
    if (epoch != power_epoch_) {
      return;  // completion belongs to a pre-power-cut lifetime
    }
    Complete(std::move(req));
  });
}

void Disk::Complete(DiskRequest req) {
  if (powered_off_) {
    return;
  }

  // Injected transient failure: the head sought but the transfer never happened.
  if (faults_ != nullptr && faults_->NextDiskRequestFails(req.start, req.nblocks)) {
    ++stats_.io_errors;
    head_cylinder_ = CylinderOf(req.start);
    last_block_end_ = req.start;
    active_ = false;
    if (tracer_ != nullptr && tracer_->enabled(trace::Category::kDisk)) {
      tracer_->End(trace::Category::kDisk, trace_track_, "service", engine_->now(),
                   static_cast<uint64_t>(Status::kIoError));
    }
    if (req.done) {
      req.done(Status::kIoError);
    }
    if (!powered_off_ && !active_) {
      StartNext();
    }
    return;
  }

  // Fails the active request at block offset `at` with kIoError, leaving the
  // head where the transfer died. Mirrors the transient-failure completion.
  auto fail_request = [&](uint32_t at) {
    ++stats_.io_errors;
    head_cylinder_ = CylinderOf(req.start + at);
    last_block_end_ = req.start + at;
    active_ = false;
    if (tracer_ != nullptr && tracer_->enabled(trace::Category::kDisk)) {
      tracer_->End(trace::Category::kDisk, trace_track_, "service", engine_->now(),
                   static_cast<uint64_t>(Status::kIoError));
    }
    if (req.done) {
      req.done(Status::kIoError);
    }
    if (!powered_off_ && !active_) {
      StartNext();
    }
  };

  // DMA between the platter store and memory frames happens at completion time.
  // Writes become durable one block at a time; a power cut mid-request tears it.
  // Each DMA'd block consults the media-fault model: writes may be lost (acked,
  // never durable) or misdirected (land at the wrong LBA); reads may surface
  // persistent bit rot or hit a latent sector error. Model-only transfers (no
  // frame) touch no media and consult nothing.
  uint32_t lost = 0;  // acked write blocks that never reached the platter
  for (uint32_t i = 0; i < req.nblocks; ++i) {
    if (req.frames.empty() || req.frames[i] == kInvalidFrame) {
      continue;
    }
    auto frame = mem_->Data(req.frames[i]);
    const BlockId blk = req.start + i;
    if (req.write) {
      BlockId land = blk;
      if (faults_ != nullptr) {
        switch (faults_->NextWriteFate(blk, geometry_.num_blocks)) {
          case sim::FaultInjector::WriteFate::kLost:
            ++stats_.lost_blocks;
            ++lost;
            continue;  // acked but never durable: media, tag, cut count untouched
          case sim::FaultInjector::WriteFate::kMisdirect:
            land = static_cast<BlockId>(faults_->MisdirectTarget());
            ++stats_.misdirected_blocks;
            break;
          case sim::FaultInjector::WriteFate::kDurable:
            break;
        }
      }
      std::memcpy(RawBlock(land).data(), frame.data(), kBlockSize);
      latent_bad_.erase(land);  // rewriting remaps a latent-bad sector
      if (integrity_) {
        // The tag records where the controller *addressed* the data; a
        // misdirected landing is detectable because intended != land.
        tags_[land] = BlockTag{Crc32(RawBlock(land)), blk};
      }
      if (faults_ != nullptr && faults_->OnBlockWritten(land)) {
        // Power dies with this block on the platter and the rest of the request
        // torn away. No completion interrupt ever fires.
        stats_.blocks_written += i + 1 - lost;
        stats_.torn_blocks += req.nblocks - (i + 1);
        if (dropped_counter_ != nullptr) {
          *dropped_counter_ += req.nblocks - (i + 1);
        }
        PowerCut();
        return;
      }
    } else {
      if (latent_bad_.count(blk) != 0) {
        // Persistent latent sector error: unreadable until rewritten, even
        // after the injector that planted it has been detached.
        ++stats_.latent_errors;
        fail_request(i);
        return;
      }
      if (faults_ != nullptr) {
        switch (faults_->NextReadFate(blk, kBlockSize)) {
          case sim::FaultInjector::ReadFate::kRot: {
            // Silent bit rot surfacing at read time: the *media* byte flips,
            // persistently, before the DMA copies it out.
            RawBlock(blk)[faults_->RotOffset()] ^= 0x20;
            ++stats_.rotted_blocks;
            break;
          }
          case sim::FaultInjector::ReadFate::kLatent:
            latent_bad_.insert(blk);
            ++stats_.latent_errors;
            fail_request(i);
            return;
          case sim::FaultInjector::ReadFate::kClean:
            break;
        }
      }
      std::memcpy(frame.data(), RawBlock(blk).data(), kBlockSize);
    }
  }
  if (req.write) {
    stats_.blocks_written += req.nblocks - lost;
  } else {
    stats_.blocks_read += req.nblocks;
  }

  head_cylinder_ = CylinderOf(req.start + req.nblocks - 1);
  last_block_end_ = req.start + req.nblocks;
  active_ = false;

  if (tracer_ != nullptr && tracer_->enabled(trace::Category::kDisk)) {
    tracer_->End(trace::Category::kDisk, trace_track_, "service", engine_->now(),
                 static_cast<uint64_t>(Status::kOk));
  }

  if (req.done) {
    req.done(Status::kOk);
  }
  // The completion callback may have chained a new request (or cut power): an
  // idle-disk Submit from inside `done` dispatches directly, so only start the
  // queue if the controller is still idle and alive.
  if (!powered_off_ && !active_) {
    StartNext();
  }
}

void Disk::ClearQueue() {
  queue_.clear();
  by_start_.clear();
  merge_tail_[0].clear();
  merge_tail_[1].clear();
}

void Disk::PowerCut() {
  powered_off_ = true;
  ++power_epoch_;  // orphan any completion already scheduled
  ClearQueue();
  active_ = false;
}

void Disk::PowerRestore() {
  powered_off_ = false;
  ClearQueue();
  active_ = false;
  head_cylinder_ = 0;
  last_block_end_ = 0;
}

}  // namespace exo::hw
