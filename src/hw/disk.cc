#include "hw/disk.h"

#include <algorithm>
#include <cmath>
#include <cstring>

namespace exo::hw {

Disk::Disk(sim::Engine* engine, PhysMem* mem, const DiskGeometry& geometry, uint32_t cpu_mhz)
    : engine_(engine),
      mem_(mem),
      geometry_(geometry),
      cpu_mhz_(cpu_mhz),
      store_(static_cast<size_t>(geometry.num_blocks) * kBlockSize, 0) {}

std::span<uint8_t> Disk::RawBlock(BlockId b) {
  EXO_CHECK_LT(b, geometry_.num_blocks);
  return std::span<uint8_t>(store_.data() + static_cast<size_t>(b) * kBlockSize, kBlockSize);
}

std::span<const uint8_t> Disk::RawBlock(BlockId b) const {
  EXO_CHECK_LT(b, geometry_.num_blocks);
  return std::span<const uint8_t>(store_.data() + static_cast<size_t>(b) * kBlockSize,
                                  kBlockSize);
}

void Disk::Submit(DiskRequest req) {
  if (powered_off_) {
    return;  // dead controller: no transfer, no completion interrupt
  }
  const bool malformed =
      req.nblocks == 0 ||
      static_cast<uint64_t>(req.start) + req.nblocks > geometry_.num_blocks ||
      (!req.frames.empty() && req.frames.size() != req.nblocks);
  if (malformed) {
    ++stats_.rejected_requests;
    if (req.done) {
      // Complete asynchronously like any other request so callers never see a
      // callback re-enter them from inside Submit.
      engine_->ScheduleAfter(0, [done = std::move(req.done)]() {
        done(Status::kInvalidArgument);
      });
    }
    return;
  }

  // Try to merge with a queued request forming one contiguous run in the same
  // direction. Completion callbacks are chained so every submitter is notified.
  for (auto& q : queue_) {
    if (q.write != req.write || q.frames.empty() || req.frames.empty()) {
      continue;
    }
    if (q.start + q.nblocks == req.start) {
      q.nblocks += req.nblocks;
      q.frames.insert(q.frames.end(), req.frames.begin(), req.frames.end());
      if (req.done) {
        auto prev = std::move(q.done);
        auto next = std::move(req.done);
        q.done = [prev = std::move(prev), next = std::move(next)](Status s) {
          if (prev) {
            prev(s);
          }
          next(s);
        };
      }
      ++stats_.merged_requests;
      return;
    }
  }

  queue_.push_back(std::move(req));
  if (!active_) {
    StartNext();
  }
}

sim::Cycles Disk::ServiceTime(BlockId start, uint32_t nblocks) {
  const double cycles_per_ms = static_cast<double>(cpu_mhz_) * 1000.0;
  double ms = geometry_.controller_overhead_us / 1000.0;

  const uint32_t target_cyl = CylinderOf(start);
  const bool sequential = (start == last_block_end_) && (target_cyl == head_cylinder_);

  if (!sequential) {
    // Seek: square-root curve between adjacent-cylinder and full-stroke times.
    const uint32_t dist =
        target_cyl > head_cylinder_ ? target_cyl - head_cylinder_ : head_cylinder_ - target_cyl;
    if (dist > 0) {
      const double frac = static_cast<double>(dist) /
                          static_cast<double>(std::max(1u, geometry_.num_cylinders() - 1));
      ms += geometry_.min_seek_ms +
            (geometry_.max_seek_ms - geometry_.min_seek_ms) * std::sqrt(frac);
      ++stats_.seeks;
    }
    // Rotational delay: platter position is a function of simulated time, so the
    // model naturally rewards requests that land just ahead of the head.
    const double rev_ms = 60000.0 / geometry_.rpm;
    const double now_ms =
        static_cast<double>(engine_->now()) / cycles_per_ms + ms;  // when the head arrives
    const double head_angle = now_ms / rev_ms - std::floor(now_ms / rev_ms);
    const double target_angle = static_cast<double>(start % geometry_.blocks_per_track) /
                                static_cast<double>(geometry_.blocks_per_track);
    double wait = target_angle - head_angle;
    if (wait < 0) {
      wait += 1.0;
    }
    ms += wait * rev_ms;
  }

  // Media transfer.
  const double bytes = static_cast<double>(nblocks) * kBlockSize;
  ms += bytes / (geometry_.transfer_mb_per_s * 1e6) * 1000.0;

  return static_cast<sim::Cycles>(ms * cycles_per_ms);
}

void Disk::StartNext() {
  EXO_CHECK(!active_);
  if (queue_.empty()) {
    return;
  }

  // C-LOOK: service the queued request with the smallest start block at or beyond the
  // head; wrap to the lowest start when none is ahead.
  const BlockId head_block = head_cylinder_ * geometry_.blocks_per_cylinder();
  size_t best = queue_.size();
  size_t best_wrap = 0;
  for (size_t i = 0; i < queue_.size(); ++i) {
    if (queue_[i].start >= head_block &&
        (best == queue_.size() || queue_[i].start < queue_[best].start)) {
      best = i;
    }
    if (queue_[i].start < queue_[best_wrap].start) {
      best_wrap = i;
    }
  }
  if (best == queue_.size()) {
    best = best_wrap;
  }

  DiskRequest req = std::move(queue_[best]);
  queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(best));
  active_ = true;

  const sim::Cycles service = ServiceTime(req.start, req.nblocks);
  stats_.busy_cycles += service;
  ++stats_.requests;

  engine_->ScheduleAfter(service,
                         [this, epoch = power_epoch_, req = std::move(req)]() mutable {
    if (epoch != power_epoch_) {
      return;  // completion belongs to a pre-power-cut lifetime
    }
    Complete(std::move(req));
  });
}

void Disk::Complete(DiskRequest req) {
  if (powered_off_) {
    return;
  }

  // Injected transient failure: the head sought but the transfer never happened.
  if (faults_ != nullptr && faults_->NextDiskRequestFails(req.start, req.nblocks)) {
    ++stats_.io_errors;
    head_cylinder_ = CylinderOf(req.start);
    last_block_end_ = req.start;
    active_ = false;
    if (req.done) {
      req.done(Status::kIoError);
    }
    if (!powered_off_) {
      StartNext();
    }
    return;
  }

  // DMA between the platter store and memory frames happens at completion time.
  // Writes become durable one block at a time; a power cut mid-request tears it.
  for (uint32_t i = 0; i < req.nblocks; ++i) {
    if (req.frames.empty() || req.frames[i] == kInvalidFrame) {
      continue;
    }
    auto frame = mem_->Data(req.frames[i]);
    auto block = RawBlock(req.start + i);
    if (req.write) {
      std::memcpy(block.data(), frame.data(), kBlockSize);
      if (faults_ != nullptr && faults_->OnBlockWritten(req.start + i)) {
        // Power dies with this block on the platter and the rest of the request
        // torn away. No completion interrupt ever fires.
        stats_.blocks_written += i + 1;
        stats_.torn_blocks += req.nblocks - (i + 1);
        PowerCut();
        return;
      }
    } else {
      std::memcpy(frame.data(), block.data(), kBlockSize);
    }
  }
  if (req.write) {
    stats_.blocks_written += req.nblocks;
  } else {
    stats_.blocks_read += req.nblocks;
  }

  head_cylinder_ = CylinderOf(req.start + req.nblocks - 1);
  last_block_end_ = req.start + req.nblocks;
  active_ = false;

  if (req.done) {
    req.done(Status::kOk);
  }
  StartNext();
}

void Disk::PowerCut() {
  powered_off_ = true;
  ++power_epoch_;  // orphan any completion already scheduled
  queue_.clear();
  active_ = false;
}

void Disk::PowerRestore() {
  powered_off_ = false;
  queue_.clear();
  active_ = false;
  head_cylinder_ = 0;
  last_block_end_ = 0;
}

}  // namespace exo::hw
