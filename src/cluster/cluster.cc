#include "cluster/cluster.h"

#include <algorithm>
#include <barrier>
#include <thread>
#include <utility>

namespace exo::cluster {

namespace {

sim::Cycles SatAdd(sim::Cycles a, sim::Cycles b) {
  return a > kNever - b ? kNever : a + b;
}

}  // namespace

ShardLink::ShardLink(Cluster* cluster, uint32_t shard_a, uint32_t shard_b,
                     double mbit_per_s, double latency_us, uint32_t cpu_mhz)
    : hw::Link(nullptr, mbit_per_s, latency_us, cpu_mhz),
      cluster_(cluster),
      shard_a_(shard_a),
      shard_b_(shard_b) {
  // A zero-latency cross-shard wire would leave the conservative protocol no
  // window to parallelize; clamp to one cycle of lookahead.
  if (latency_cycles_ < 1) {
    latency_cycles_ = 1;
  }
}

sim::Engine* ShardLink::engine_for(const hw::Nic* side) const {
  return cluster_->shards_[side == a_ ? shard_a_ : shard_b_]->engine.get();
}

void ShardLink::SetFaultInjectorFor(const hw::Nic* sender, sim::FaultInjector* faults) {
  EXO_CHECK(sender == a_ || sender == b_);
  DirState& ds = sender == a_ ? dir_state_ab_ : dir_state_ba_;
  ds.faults = faults;
  if (ds.faults != nullptr && ds.tracer != nullptr) {
    ds.faults->AttachTracer(ds.tracer, engine_for(sender));
  }
}

void ShardLink::AttachTracerFor(const hw::Nic* sender, trace::Tracer* tracer,
                                const std::string& name) {
  EXO_CHECK(sender == a_ || sender == b_);
  DirState& ds = sender == a_ ? dir_state_ab_ : dir_state_ba_;
  ds.tracer = tracer;
  if (ds.tracer != nullptr) {
    ds.track = ds.tracer->NewTrack(name);
    if (ds.faults != nullptr) {
      ds.faults->AttachTracer(ds.tracer, engine_for(sender));
    }
  }
}

sim::Cycles ShardLink::Send(hw::Nic* from, hw::Packet p) {
  EXO_CHECK(from == a_ || from == b_);
  const bool from_a = from == a_;
  hw::Nic* to = from_a ? b_ : a_;
  Direction& dir = from_a ? dir_ab_ : dir_ba_;
  DirState& ds = from_a ? dir_state_ab_ : dir_state_ba_;
  const uint32_t src = from_a ? shard_a_ : shard_b_;
  const uint32_t dst = from_a ? shard_b_ : shard_a_;

  // Same wire model as hw::Link::Send, serialized against the sender's shard
  // clock. Each direction — including its fault and trace state — is touched
  // only by its sender's shard, so none of this needs synchronization.
  const uint64_t wire_bytes =
      std::max<uint64_t>(p.bytes.size(), hw::kMinFrameBytes) + hw::kFrameWireOverhead;
  const sim::Cycles serialize =
      static_cast<sim::Cycles>(static_cast<double>(wire_bytes) * cycles_per_byte_);
  sim::Engine* src_engine = cluster_->shards_[src]->engine.get();
  const sim::Cycles start = std::max(src_engine->now(), dir.busy_until);
  dir.busy_until = start + serialize;
  const sim::Cycles arrival = dir.busy_until + latency_cycles_;

  const bool tracing =
      ds.tracer != nullptr && ds.tracer->enabled(trace::Category::kNet);
  if (tracing) {
    ds.tracer->Begin(trace::Category::kNet, ds.track, "wire", start, wire_bytes);
    ds.tracer->End(trace::Category::kNet, ds.track, "wire", dir.busy_until, wire_bytes);
  }

  if (ds.faults != nullptr) {
    switch (ds.faults->NextWireFate(p.bytes.size())) {
      case sim::FaultInjector::WireFate::kDrop:
        return dir.busy_until;  // wire time consumed, frame never crosses
      case sim::FaultInjector::WireFate::kCorrupt:
        p.bytes[ds.faults->CorruptionOffset()] ^= 0xff;
        break;
      case sim::FaultInjector::WireFate::kDuplicate: {
        // The duplicate trails the original by one serialization slot and
        // crosses the fabric as its own message.
        hw::Packet copy = p;
        dir.busy_until += serialize;
        if (tracing) {
          ds.tracer->Begin(trace::Category::kNet, ds.track, "wire_dup",
                           dir.busy_until - serialize, wire_bytes);
          ds.tracer->End(trace::Category::kNet, ds.track, "wire_dup",
                         dir.busy_until, wire_bytes);
        }
        cluster_->Post(dst, Cluster::CrossMsg{dir.busy_until + latency_cycles_, src,
                                              cluster_->shards_[src]->next_msg_seq++,
                                              to, std::move(copy)});
        break;
      }
      case sim::FaultInjector::WireFate::kDeliver:
        break;
    }
  }

  if (tracing) {
    ds.tracer->Instant(trace::Category::kNet, ds.track, "arrive", arrival, wire_bytes);
  }
  cluster_->Post(dst, Cluster::CrossMsg{arrival, src,
                                        cluster_->shards_[src]->next_msg_seq++, to,
                                        std::move(p)});
  return dir.busy_until;
}

Cluster::Cluster(const ClusterOptions& options)
    : threads_(options.threads == 0 ? 1 : options.threads), seed_(options.seed) {}

uint32_t Cluster::AddShard(std::string name) {
  EXO_CHECK(!running_);
  auto s = std::make_unique<Shard>();
  s->engine = std::make_unique<sim::Engine>();
  s->name = std::move(name);
  shards_.push_back(std::move(s));
  return static_cast<uint32_t>(shards_.size() - 1);
}

hw::Link* Cluster::Connect(uint32_t shard_a, hw::Nic* a, uint32_t shard_b,
                           hw::Nic* b, double mbit_per_s, double latency_us,
                           uint32_t cpu_mhz) {
  EXO_CHECK(!running_);
  EXO_CHECK(shard_a < shards_.size());
  EXO_CHECK(shard_b < shards_.size());
  if (shard_a == shard_b) {
    auto link = std::make_unique<hw::Link>(shards_[shard_a]->engine.get(),
                                           mbit_per_s, latency_us, cpu_mhz);
    link->Connect(a, b);
    links_.push_back(std::move(link));
  } else {
    std::unique_ptr<ShardLink> link(
        new ShardLink(this, shard_a, shard_b, mbit_per_s, latency_us, cpu_mhz));
    lookahead_ = std::min(lookahead_, link->latency_cycles());
    link->Connect(a, b);
    links_.push_back(std::move(link));
  }
  return links_.back().get();
}

void Cluster::Post(uint32_t dst_shard, CrossMsg msg) {
  Shard& dst = *shards_[dst_shard];
  if (dst.inbox.size() < shards_.size()) {
    // Only reachable from single-threaded setup code (a Transmit before the
    // first Run); RunLoop sizes every inbox before the pool starts.
    dst.inbox.resize(shards_.size());
  }
  dst.inbox[msg.src_shard].push_back(std::move(msg));
}

void Cluster::DrainShard(uint32_t shard) {
  Shard& s = *shards_[shard];
  s.drain_scratch.clear();
  for (std::vector<CrossMsg>& box : s.inbox) {
    for (CrossMsg& m : box) {
      s.drain_scratch.push_back(std::move(m));
    }
    box.clear();
  }
  // The (arrival, src_shard, seq) key is assigned in deterministic simulated
  // order on the sending side, so sorting by it makes insertion order — and
  // therefore the engine's same-timestamp tie-break — independent of which
  // thread filled which inbox slot first.
  std::sort(s.drain_scratch.begin(), s.drain_scratch.end(),
            [](const CrossMsg& x, const CrossMsg& y) {
              if (x.arrival != y.arrival) {
                return x.arrival < y.arrival;
              }
              if (x.src_shard != y.src_shard) {
                return x.src_shard < y.src_shard;
              }
              return x.seq < y.seq;
            });
  s.messages_in += s.drain_scratch.size();
  for (CrossMsg& m : s.drain_scratch) {
    s.engine->ScheduleAt(m.arrival, [nic = m.nic, p = std::move(m.packet)]() mutable {
      nic->Deliver(std::move(p));
    });
  }
  s.drain_scratch.clear();
  s.next_event = s.engine->HasPendingEvents() ? s.engine->NextEventTime() : kNever;
}

void Cluster::RunWindow(uint32_t shard, sim::Cycles horizon) {
  // Runs every event with timestamp < horizon and leaves the clock at
  // horizon - 1, so a cross-shard arrival (always >= horizon) is never in this
  // shard's past when the mailbox drains.
  shards_[shard]->engine->RunUntil(horizon - 1);
}

void Cluster::RunLoop(sim::Cycles deadline) {
  EXO_CHECK(!shards_.empty());
  running_ = true;
  deadline_ = deadline;
  for (auto& s : shards_) {
    if (s->inbox.size() < shards_.size()) {
      s->inbox.resize(shards_.size());
    }
  }
  // Setup code may Transmit before the first Run; fold that mail in before the
  // first horizon is computed.
  for (uint32_t i = 0; i < shards_.size(); ++i) {
    DrainShard(i);
  }

  const uint32_t num_shards = static_cast<uint32_t>(shards_.size());
  const uint32_t T = std::min(std::max(threads_, 1u), num_shards);
  done_ = false;

  // Barrier completion runs exactly once per round, after every worker has
  // drained its shards: the only place round state is written.
  auto completion = [this]() noexcept {
    sim::Cycles tmin = kNever;
    for (const auto& s : shards_) {
      tmin = std::min(tmin, s->next_event);
    }
    if (tmin == kNever || tmin > deadline_) {
      done_ = true;
      return;
    }
    horizon_ = SatAdd(tmin, lookahead_);
    if (deadline_ != kNever) {
      horizon_ = std::min(horizon_, deadline_ + 1);
    }
    ++rounds_;
  };
  std::barrier round_barrier(T, completion);
  std::barrier mid_barrier(T);

  auto worker = [&](uint32_t w) {
    while (true) {
      round_barrier.arrive_and_wait();  // publishes horizon_ / done_
      if (done_) {
        return;
      }
      const sim::Cycles horizon = horizon_;
      for (uint32_t s = w; s < num_shards; s += T) {
        RunWindow(s, horizon);
      }
      mid_barrier.arrive_and_wait();  // all sends done before any drain reads
      for (uint32_t s = w; s < num_shards; s += T) {
        DrainShard(s);
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(T - 1);
  for (uint32_t w = 1; w < T; ++w) {
    pool.emplace_back(worker, w);
  }
  worker(0);
  for (std::thread& t : pool) {
    t.join();
  }
}

void Cluster::RunUntil(sim::Cycles t) {
  RunLoop(t);
  // Windows leave clocks at horizon - 1 <= t; align every shard to exactly t,
  // mirroring Engine::RunUntil semantics cluster-wide.
  for (auto& s : shards_) {
    s->engine->RunUntil(t);
  }
}

uint64_t Cluster::cross_messages() const {
  uint64_t total = 0;
  for (const auto& s : shards_) {
    total += s->messages_in;
  }
  return total;
}

}  // namespace exo::cluster
