// Topology: a fleet of simulated machines on a routed inter-machine fabric.
//
// Instantiates the paper's testbed scaled out: racks of Cheetah-class servers
// behind an optional front-end load balancer, plus a fleet of client machines,
// every machine a full hw::Machine (CPU + memory + disks + NICs) with its own
// derived seed and "m<id>."-prefixed counters and trace tracks. Machines are
// grouped onto Cluster shards (machines_per_shard per event queue); wires
// between machines on different shards become conservative-horizon ShardLinks,
// wires within a shard stay plain hw::Links.
//
// Two wiring modes:
//   - front_end_lb = true: every client links to the balancer, the balancer
//     links to every server. The balancer forwards store-and-forward at packet
//     granularity: flows (src ip, src port) are pinned to a backend round-robin
//     on first sight, each forwarded frame charges lb_forward_cost on the
//     balancer's CPU. Servers all answer the virtual ip kVip.
//   - front_end_lb = false: client j links directly to server j % servers
//     (the fleet_http shape: no middle hop, per-client wires).
#ifndef EXO_CLUSTER_TOPOLOGY_H_
#define EXO_CLUSTER_TOPOLOGY_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "hw/machine.h"
#include "sim/cpu_meter.h"
#include "sim/fault.h"
#include "sim/rng.h"

namespace exo::cluster {

// Active health checking for the balancer (docs/CLUSTER.md "Machine failure
// and failover"): the balancer probes each backend's NIC firmware on a
// seeded-jitter interval, ejects a backend after `fall` consecutive missed
// replies (evicting its pinned flows), and readmits it after `rise`
// consecutive successes. Disabled by default — an unarmed topology schedules
// no probe events and stays byte-identical to the pre-failover behavior.
struct HealthCheckConfig {
  bool enabled = false;
  double interval_us = 2000.0;  // mean per-backend probe interval
  double timeout_us = 1000.0;   // reply deadline per probe
  uint32_t fall = 3;            // consecutive misses before ejection
  uint32_t rise = 2;            // consecutive successes before readmission
  double jitter_frac = 0.25;    // probes land in interval * (1 +/- jitter_frac)
};

struct TopologyConfig {
  uint32_t servers = 3;
  uint32_t clients = 4;
  bool front_end_lb = true;
  // Machines per Cluster shard (per event queue / OS-thread unit). 1 gives
  // maximum parallelism; clients + servers + 1 collapses to one shard and the
  // exact single-engine semantics.
  uint32_t machines_per_shard = 1;
  uint32_t threads = 1;
  uint64_t seed = 1;
  // Balancer <-> server wires (intra-rack) and client <-> fleet wires.
  double rack_mbit_per_s = 1000.0;
  double rack_latency_us = 20.0;
  double client_mbit_per_s = 1000.0;
  double client_latency_us = 40.0;
  // Balancer CPU cycles per forwarded frame (store-and-forward cost).
  sim::Cycles lb_forward_cost = 600;
  // Active backend health checks (armed with ArmHealthChecks; off by default).
  HealthCheckConfig health;
  // How long a flow pin lingers after a client FIN before eviction. The close
  // handshake (server FIN/ACK, final client ACK) must still route to the
  // pinned backend; evicting on the FIN itself would misroute it.
  double lb_pin_linger_us = 500.0;
  // Template for every machine; seed is overridden per machine with
  // DeriveSeed(seed, machine_id) and num_nics with the wiring's fan-out.
  hw::MachineConfig machine;
};

class Topology {
 public:
  // Servers answer this virtual IP in both wiring modes.
  static constexpr uint32_t kVip = 100;

  explicit Topology(const TopologyConfig& config);

  Cluster& cluster() { return cluster_; }
  const TopologyConfig& config() const { return config_; }

  // Machine ids are cluster-wide: [balancer,] servers, then clients.
  size_t num_machines() const { return machines_.size(); }
  hw::Machine& machine(uint32_t id) { return *machines_[id]; }
  uint32_t shard_of(uint32_t id) const { return id / config_.machines_per_shard; }
  sim::Engine& engine_of(uint32_t id) { return cluster_.engine(shard_of(id)); }

  bool has_balancer() const { return config_.front_end_lb; }
  hw::Machine& balancer() { return *machines_[0]; }
  uint32_t server_id(uint32_t k) const { return (has_balancer() ? 1 : 0) + k; }
  uint32_t client_id(uint32_t j) const { return server_id(config_.servers) + j; }
  hw::Machine& server(uint32_t k) { return *machines_[server_id(k)]; }
  hw::Machine& client(uint32_t j) { return *machines_[client_id(j)]; }
  uint32_t client_ip(uint32_t j) const { return j + 1; }

  // Direct mode: which server machine and which of its NICs face client j.
  uint32_t server_for_client(uint32_t j) const { return j % config_.servers; }
  uint32_t server_nic_for_client(uint32_t j) const { return j / config_.servers; }

  void Run() { cluster_.Run(); }
  void RunUntil(sim::Cycles t) { cluster_.RunUntil(t); }

  uint64_t lb_forwarded() const { return lb_forwarded_ == nullptr ? 0 : *lb_forwarded_; }
  uint64_t lb_no_route() const { return lb_no_route_ == nullptr ? 0 : *lb_no_route_; }
  size_t lb_flows() const { return lb_flows_.size(); }
  uint64_t lb_ejected() const { return lb_ejected_ == nullptr ? 0 : *lb_ejected_; }
  uint64_t lb_readmitted() const { return lb_readmitted_ == nullptr ? 0 : *lb_readmitted_; }
  uint64_t lb_pins_evicted() const { return lb_pins_evicted_ == nullptr ? 0 : *lb_pins_evicted_; }
  uint64_t lb_failover_reroutes() const {
    return lb_failover_reroutes_ == nullptr ? 0 : *lb_failover_reroutes_;
  }

  // --- Machine failure and failover (docs/CLUSTER.md, docs/ROBUSTNESS.md) ---

  // Arms the balancer's active health checks against every backend until the
  // given simulated time (probes are pre-scheduled events; an open-ended
  // self-rescheduling loop would keep Run() from ever terminating). Probes are
  // hw::kProbeProto frames answered by the backend NIC firmware
  // (EnableProbeResponder is armed here on every server NIC facing the
  // balancer), deliberately below the TCP stack: a killed machine is silent
  // exactly like dead hardware. Requires front_end_lb.
  void ArmHealthChecks(sim::Cycles until);

  // Schedules the machine kill/reboot events (sim::ParseMachineSchedule
  // grammar: "k@<t>:<m>,b@<t>:<m>") on each victim's shard engine. Kills run
  // hw::Machine::Kill (NICs down, disks power-cut, kill listeners) and reboots
  // hw::Machine::Reboot; both are recorded through a per-victim
  // sim::FaultInjector (fault.machine_kills / fault.machine_reboots counters
  // and machine_kill/machine_reboot trace instants on the victim's timeline).
  // All state touched is machine-local, so schedules replay bit-identically at
  // any thread count. Call before Run; may be called multiple times.
  void ApplyMachineSchedule(const std::vector<sim::MachineEvent>& schedule);

  // Optional fleet-level lifecycle hooks, called (with the machine id, on the
  // victim's shard thread, after the hardware transition and the machine's own
  // listeners) for every scheduled kill/reboot. Benches and tests use these to
  // shut down / rebuild the victim's software stack.
  void SetMachineLifecycleHooks(std::function<void(uint32_t)> on_kill,
                                std::function<void(uint32_t)> on_reboot) {
    on_kill_ = std::move(on_kill);
    on_reboot_ = std::move(on_reboot);
  }

  // Health-check observability for benches: current ejection state and the
  // last ejection/readmission timestamps per backend (0 = never).
  bool backend_ejected(uint32_t k) const {
    return k < lb_health_.size() && lb_health_[k].ejected;
  }
  sim::Cycles backend_last_eject(uint32_t k) const {
    return k < lb_health_.size() ? lb_health_[k].last_eject_time : 0;
  }
  sim::Cycles backend_last_readmit(uint32_t k) const {
    return k < lb_health_.size() ? lb_health_[k].last_readmit_time : 0;
  }

  // Deterministic fleet-wide observability: per-machine counter snapshots
  // ("m0.nic.dropped 12\n" ...) concatenated in machine order, and the
  // machines' trace rings merged in (time, machine, seq) order. The cluster
  // determinism tests diff both byte-for-byte across thread counts.
  std::string MergedCountersDump() const;
  std::string MergedTraceDump(uint32_t cpu_mhz = 200) const;

 private:
  // A flow's pin to a backend, plus its close-tracking state: a client FIN
  // marks the pin closing and schedules an epoch-guarded linger eviction;
  // later non-FIN traffic on the flow (retransmits, a reused source port)
  // bumps the epoch and revives the pin, cancelling the pending eviction.
  struct FlowPin {
    uint32_t backend = 0;
    uint64_t close_epoch = 0;
    bool closing = false;
  };

  // Per-backend health-check state; balancer-shard-local like lb_flows_.
  struct BackendHealth {
    bool ejected = false;
    uint32_t strikes = 0;    // consecutive missed probes
    uint32_t successes = 0;  // consecutive replies while ejected
    uint64_t probes_sent = 0;
    uint64_t last_reply_seq = 0;
    sim::Cycles last_eject_time = 0;
    sim::Cycles last_readmit_time = 0;
    sim::Rng rng{1};  // seeded-jitter probe spacing
  };

  void WireBalancer();
  void WireDirect();
  void ForwardFromClient(uint32_t client_nic, hw::Packet p);
  void OnServerFrame(uint32_t backend, hw::Packet p);
  void ForwardFromServer(hw::Packet p);
  // Flow key: (src ip, src port). TCP frames carry their real source port in
  // the TCP header (net::kIpHeaderBytes); everything else keys on the generic
  // net::kOffSrcPort bytes, preserving the historical non-TCP pinning.
  uint64_t FlowKey(const hw::Packet& p) const;
  // Round-robin over non-ejected backends; returns kNoBackend if all ejected.
  static constexpr uint32_t kNoBackend = 0xffffffff;
  uint32_t PickBackend();
  void EvictPin(uint64_t flow, bool reroute_expected);
  void ScheduleProbe(uint32_t backend);
  void SendProbe(uint32_t backend);
  void OnProbeMiss(uint32_t backend);
  void Eject(uint32_t backend);
  void Readmit(uint32_t backend);
  sim::FaultInjector* MachineFaultInjector(uint32_t id);

  TopologyConfig config_;
  Cluster cluster_;
  std::vector<std::unique_ptr<hw::Machine>> machines_;
  // Balancer state; lives on the balancer's shard, touched only by it.
  std::unique_ptr<sim::CpuMeter> lb_cpu_;
  std::map<uint64_t, FlowPin> lb_flows_;  // (src ip, src port) -> pin
  uint32_t lb_next_backend_ = 0;
  sim::Counters::Slot* lb_forwarded_ = nullptr;
  sim::Counters::Slot* lb_no_route_ = nullptr;
  sim::Counters::Slot* lb_ejected_ = nullptr;
  sim::Counters::Slot* lb_readmitted_ = nullptr;
  sim::Counters::Slot* lb_pins_evicted_ = nullptr;
  sim::Counters::Slot* lb_failover_reroutes_ = nullptr;
  // Health checks (empty until ArmHealthChecks).
  std::vector<BackendHealth> lb_health_;
  sim::Cycles health_until_ = 0;
  sim::Cycles health_interval_ = 0;
  sim::Cycles health_timeout_ = 0;
  uint32_t lb_trace_track_ = 0;
  bool lb_trace_track_made_ = false;
  // Flows evicted by an ejection; counted into lb.failover_reroutes when the
  // flow re-pins to a surviving backend.
  std::set<uint64_t> pending_reroute_;
  // Machine-fault recording: one injector per victim machine, touched only by
  // that machine's shard thread.
  std::map<uint32_t, std::unique_ptr<sim::FaultInjector>> machine_faults_;
  std::function<void(uint32_t)> on_kill_;
  std::function<void(uint32_t)> on_reboot_;
};

}  // namespace exo::cluster

#endif  // EXO_CLUSTER_TOPOLOGY_H_
