// Topology: a fleet of simulated machines on a routed inter-machine fabric.
//
// Instantiates the paper's testbed scaled out: racks of Cheetah-class servers
// behind an optional front-end load balancer, plus a fleet of client machines,
// every machine a full hw::Machine (CPU + memory + disks + NICs) with its own
// derived seed and "m<id>."-prefixed counters and trace tracks. Machines are
// grouped onto Cluster shards (machines_per_shard per event queue); wires
// between machines on different shards become conservative-horizon ShardLinks,
// wires within a shard stay plain hw::Links.
//
// Two wiring modes:
//   - front_end_lb = true: every client links to the balancer, the balancer
//     links to every server. The balancer forwards store-and-forward at packet
//     granularity: flows (src ip, src port) are pinned to a backend round-robin
//     on first sight, each forwarded frame charges lb_forward_cost on the
//     balancer's CPU. Servers all answer the virtual ip kVip.
//   - front_end_lb = false: client j links directly to server j % servers
//     (the fleet_http shape: no middle hop, per-client wires).
#ifndef EXO_CLUSTER_TOPOLOGY_H_
#define EXO_CLUSTER_TOPOLOGY_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "hw/machine.h"
#include "sim/cpu_meter.h"

namespace exo::cluster {

struct TopologyConfig {
  uint32_t servers = 3;
  uint32_t clients = 4;
  bool front_end_lb = true;
  // Machines per Cluster shard (per event queue / OS-thread unit). 1 gives
  // maximum parallelism; clients + servers + 1 collapses to one shard and the
  // exact single-engine semantics.
  uint32_t machines_per_shard = 1;
  uint32_t threads = 1;
  uint64_t seed = 1;
  // Balancer <-> server wires (intra-rack) and client <-> fleet wires.
  double rack_mbit_per_s = 1000.0;
  double rack_latency_us = 20.0;
  double client_mbit_per_s = 1000.0;
  double client_latency_us = 40.0;
  // Balancer CPU cycles per forwarded frame (store-and-forward cost).
  sim::Cycles lb_forward_cost = 600;
  // Template for every machine; seed is overridden per machine with
  // DeriveSeed(seed, machine_id) and num_nics with the wiring's fan-out.
  hw::MachineConfig machine;
};

class Topology {
 public:
  // Servers answer this virtual IP in both wiring modes.
  static constexpr uint32_t kVip = 100;

  explicit Topology(const TopologyConfig& config);

  Cluster& cluster() { return cluster_; }
  const TopologyConfig& config() const { return config_; }

  // Machine ids are cluster-wide: [balancer,] servers, then clients.
  size_t num_machines() const { return machines_.size(); }
  hw::Machine& machine(uint32_t id) { return *machines_[id]; }
  uint32_t shard_of(uint32_t id) const { return id / config_.machines_per_shard; }
  sim::Engine& engine_of(uint32_t id) { return cluster_.engine(shard_of(id)); }

  bool has_balancer() const { return config_.front_end_lb; }
  hw::Machine& balancer() { return *machines_[0]; }
  uint32_t server_id(uint32_t k) const { return (has_balancer() ? 1 : 0) + k; }
  uint32_t client_id(uint32_t j) const { return server_id(config_.servers) + j; }
  hw::Machine& server(uint32_t k) { return *machines_[server_id(k)]; }
  hw::Machine& client(uint32_t j) { return *machines_[client_id(j)]; }
  uint32_t client_ip(uint32_t j) const { return j + 1; }

  // Direct mode: which server machine and which of its NICs face client j.
  uint32_t server_for_client(uint32_t j) const { return j % config_.servers; }
  uint32_t server_nic_for_client(uint32_t j) const { return j / config_.servers; }

  void Run() { cluster_.Run(); }
  void RunUntil(sim::Cycles t) { cluster_.RunUntil(t); }

  uint64_t lb_forwarded() const { return lb_forwarded_ == nullptr ? 0 : *lb_forwarded_; }
  uint64_t lb_no_route() const { return lb_no_route_ == nullptr ? 0 : *lb_no_route_; }
  size_t lb_flows() const { return lb_flows_.size(); }

  // Deterministic fleet-wide observability: per-machine counter snapshots
  // ("m0.nic.dropped 12\n" ...) concatenated in machine order, and the
  // machines' trace rings merged in (time, machine, seq) order. The cluster
  // determinism tests diff both byte-for-byte across thread counts.
  std::string MergedCountersDump() const;
  std::string MergedTraceDump(uint32_t cpu_mhz = 200) const;

 private:
  void WireBalancer();
  void WireDirect();
  void ForwardFromClient(uint32_t client_nic, hw::Packet p);
  void ForwardFromServer(hw::Packet p);

  TopologyConfig config_;
  Cluster cluster_;
  std::vector<std::unique_ptr<hw::Machine>> machines_;
  // Balancer state; lives on the balancer's shard, touched only by it.
  std::unique_ptr<sim::CpuMeter> lb_cpu_;
  std::map<uint64_t, uint32_t> lb_flows_;  // (src ip, src port) -> backend index
  uint32_t lb_next_backend_ = 0;
  sim::Counters::Slot* lb_forwarded_ = nullptr;
  sim::Counters::Slot* lb_no_route_ = nullptr;
};

}  // namespace exo::cluster

#endif  // EXO_CLUSTER_TOPOLOGY_H_
