#include "cluster/topology.h"

#include <utility>

#include "net/packet.h"

namespace exo::cluster {

namespace {

uint32_t LoadLe32(const hw::Packet& p, uint32_t off) {
  return static_cast<uint32_t>(p.bytes[off]) |
         (static_cast<uint32_t>(p.bytes[off + 1]) << 8) |
         (static_cast<uint32_t>(p.bytes[off + 2]) << 16) |
         (static_cast<uint32_t>(p.bytes[off + 3]) << 24);
}

uint16_t LoadLe16(const hw::Packet& p, uint32_t off) {
  return static_cast<uint16_t>(static_cast<uint32_t>(p.bytes[off]) |
                               (static_cast<uint32_t>(p.bytes[off + 1]) << 8));
}

// Frames shorter than the transport header can't be routed.
constexpr size_t kMinRoutable = net::kOffDstPort + 2;

}  // namespace

Topology::Topology(const TopologyConfig& config)
    : config_(config), cluster_(ClusterOptions{config.threads, config.seed}) {
  EXO_CHECK(config_.servers > 0);
  EXO_CHECK(config_.machines_per_shard > 0);

  const uint32_t total =
      (config_.front_end_lb ? 1 : 0) + config_.servers + config_.clients;
  const uint32_t shards = (total + config_.machines_per_shard - 1) / config_.machines_per_shard;
  for (uint32_t s = 0; s < shards; ++s) {
    cluster_.AddShard("shard" + std::to_string(s));
  }

  for (uint32_t id = 0; id < total; ++id) {
    hw::MachineConfig mc = config_.machine;
    mc.seed = cluster_.DeriveSeed(id);
    if (config_.front_end_lb) {
      if (id == 0) {
        mc.num_nics = config_.clients + config_.servers;  // one port per wire
      } else {
        mc.num_nics = 1;
      }
    } else {
      if (id < config_.servers) {
        // Server k faces every client with j % servers == k on its own NIC.
        uint32_t fan_in = 0;
        for (uint32_t j = id; j < config_.clients; j += config_.servers) {
          ++fan_in;
        }
        mc.num_nics = fan_in > 0 ? fan_in : 1;
      } else {
        mc.num_nics = 1;
      }
    }
    auto m = std::make_unique<hw::Machine>(&cluster_.engine(shard_of(id)), mc);
    m->SetClusterIdentity(id);
    machines_.push_back(std::move(m));
  }

  if (config_.front_end_lb) {
    WireBalancer();
  } else {
    WireDirect();
  }
}

void Topology::WireBalancer() {
  hw::Machine& lb = balancer();
  const uint32_t mhz = config_.machine.cost.cpu_mhz;
  lb_cpu_ = std::make_unique<sim::CpuMeter>(&engine_of(0));
  lb_forwarded_ = lb.counters().Handle("lb.forwarded");
  lb_no_route_ = lb.counters().Handle("lb.no_route");

  // Balancer NIC j < clients faces client j; NIC clients + k faces server k.
  for (uint32_t j = 0; j < config_.clients; ++j) {
    cluster_.Connect(shard_of(0), &lb.nic(j), shard_of(client_id(j)),
                     &client(j).nic(0), config_.client_mbit_per_s,
                     config_.client_latency_us, mhz);
    lb.nic(j).SetReceiveHandler([this, j](hw::Packet p) {
      ForwardFromClient(j, std::move(p));
    });
  }
  for (uint32_t k = 0; k < config_.servers; ++k) {
    cluster_.Connect(shard_of(0), &lb.nic(config_.clients + k),
                     shard_of(server_id(k)), &server(k).nic(0),
                     config_.rack_mbit_per_s, config_.rack_latency_us, mhz);
    lb.nic(config_.clients + k).SetReceiveHandler([this](hw::Packet p) {
      ForwardFromServer(std::move(p));
    });
  }
}

void Topology::WireDirect() {
  const uint32_t mhz = config_.machine.cost.cpu_mhz;
  for (uint32_t j = 0; j < config_.clients; ++j) {
    const uint32_t k = server_for_client(j);
    cluster_.Connect(shard_of(server_id(k)), &server(k).nic(server_nic_for_client(j)),
                     shard_of(client_id(j)), &client(j).nic(0),
                     config_.client_mbit_per_s, config_.client_latency_us, mhz);
  }
}

void Topology::ForwardFromClient(uint32_t client_nic, hw::Packet p) {
  if (p.bytes.size() < kMinRoutable) {
    ++*lb_no_route_;
    return;
  }
  // Pin the flow (src ip, src port) to a backend round-robin on first sight,
  // so every segment of a connection reaches the same server.
  const uint64_t flow = (static_cast<uint64_t>(LoadLe32(p, net::kOffSrcIp)) << 16) |
                        LoadLe16(p, net::kOffSrcPort);
  auto [it, fresh] = lb_flows_.try_emplace(flow, lb_next_backend_);
  if (fresh) {
    lb_next_backend_ = (lb_next_backend_ + 1) % config_.servers;
  }
  const uint32_t backend = it->second;
  (void)client_nic;
  hw::Nic* out = &balancer().nic(config_.clients + backend);
  const sim::Cycles done = lb_cpu_->Occupy(config_.lb_forward_cost);
  ++*lb_forwarded_;
  engine_of(0).ScheduleAt(done, [out, p = std::move(p)]() mutable {
    out->Transmit(std::move(p));
  });
}

void Topology::ForwardFromServer(hw::Packet p) {
  if (p.bytes.size() < kMinRoutable) {
    ++*lb_no_route_;
    return;
  }
  // Replies carry the client's address as destination; client ips are 1-based
  // NIC indices on the balancer.
  const uint32_t dst_ip = LoadLe32(p, net::kOffDstIp);
  if (dst_ip < 1 || dst_ip > config_.clients) {
    ++*lb_no_route_;
    return;
  }
  hw::Nic* out = &balancer().nic(dst_ip - 1);
  const sim::Cycles done = lb_cpu_->Occupy(config_.lb_forward_cost);
  ++*lb_forwarded_;
  engine_of(0).ScheduleAt(done, [out, p = std::move(p)]() mutable {
    out->Transmit(std::move(p));
  });
}

std::string Topology::MergedCountersDump() const {
  std::string out;
  for (const auto& m : machines_) {
    for (const auto& [name, value] : m->counters().Snapshot()) {
      out += name;
      out += ' ';
      out += std::to_string(value);
      out += '\n';
    }
  }
  return out;
}

std::string Topology::MergedTraceDump(uint32_t cpu_mhz) const {
  std::vector<const trace::Tracer*> tracers;
  tracers.reserve(machines_.size());
  for (const auto& m : machines_) {
    tracers.push_back(&m->tracer());
  }
  return trace::MergedTextDump(tracers, cpu_mhz);
}

}  // namespace exo::cluster
