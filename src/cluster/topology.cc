#include "cluster/topology.h"

#include <utility>

#include "net/packet.h"

namespace exo::cluster {

namespace {

uint32_t LoadLe32(const hw::Packet& p, uint32_t off) {
  return static_cast<uint32_t>(p.bytes[off]) |
         (static_cast<uint32_t>(p.bytes[off + 1]) << 8) |
         (static_cast<uint32_t>(p.bytes[off + 2]) << 16) |
         (static_cast<uint32_t>(p.bytes[off + 3]) << 24);
}

uint16_t LoadLe16(const hw::Packet& p, uint32_t off) {
  return static_cast<uint16_t>(static_cast<uint32_t>(p.bytes[off]) |
                               (static_cast<uint32_t>(p.bytes[off + 1]) << 8));
}

// Frames shorter than the transport header can't be routed.
constexpr size_t kMinRoutable = net::kOffDstPort + 2;

}  // namespace

Topology::Topology(const TopologyConfig& config)
    : config_(config), cluster_(ClusterOptions{config.threads, config.seed}) {
  EXO_CHECK(config_.servers > 0);
  EXO_CHECK(config_.machines_per_shard > 0);

  const uint32_t total =
      (config_.front_end_lb ? 1 : 0) + config_.servers + config_.clients;
  const uint32_t shards = (total + config_.machines_per_shard - 1) / config_.machines_per_shard;
  for (uint32_t s = 0; s < shards; ++s) {
    cluster_.AddShard("shard" + std::to_string(s));
  }

  for (uint32_t id = 0; id < total; ++id) {
    hw::MachineConfig mc = config_.machine;
    mc.seed = cluster_.DeriveSeed(id);
    if (config_.front_end_lb) {
      if (id == 0) {
        mc.num_nics = config_.clients + config_.servers;  // one port per wire
      } else {
        mc.num_nics = 1;
      }
    } else {
      if (id < config_.servers) {
        // Server k faces every client with j % servers == k on its own NIC.
        uint32_t fan_in = 0;
        for (uint32_t j = id; j < config_.clients; j += config_.servers) {
          ++fan_in;
        }
        mc.num_nics = fan_in > 0 ? fan_in : 1;
      } else {
        mc.num_nics = 1;
      }
    }
    auto m = std::make_unique<hw::Machine>(&cluster_.engine(shard_of(id)), mc);
    m->SetClusterIdentity(id);
    machines_.push_back(std::move(m));
  }

  if (config_.front_end_lb) {
    WireBalancer();
  } else {
    WireDirect();
  }
}

void Topology::WireBalancer() {
  hw::Machine& lb = balancer();
  const uint32_t mhz = config_.machine.cost.cpu_mhz;
  lb_cpu_ = std::make_unique<sim::CpuMeter>(&engine_of(0));
  lb_forwarded_ = lb.counters().Handle("lb.forwarded");
  lb_no_route_ = lb.counters().Handle("lb.no_route");
  lb_ejected_ = lb.counters().Handle("lb.ejected");
  lb_readmitted_ = lb.counters().Handle("lb.readmitted");
  lb_pins_evicted_ = lb.counters().Handle("lb.pins_evicted");
  lb_failover_reroutes_ = lb.counters().Handle("lb.failover_reroutes");

  // Balancer NIC j < clients faces client j; NIC clients + k faces server k.
  for (uint32_t j = 0; j < config_.clients; ++j) {
    cluster_.Connect(shard_of(0), &lb.nic(j), shard_of(client_id(j)),
                     &client(j).nic(0), config_.client_mbit_per_s,
                     config_.client_latency_us, mhz);
    lb.nic(j).SetReceiveHandler([this, j](hw::Packet p) {
      ForwardFromClient(j, std::move(p));
    });
  }
  for (uint32_t k = 0; k < config_.servers; ++k) {
    cluster_.Connect(shard_of(0), &lb.nic(config_.clients + k),
                     shard_of(server_id(k)), &server(k).nic(0),
                     config_.rack_mbit_per_s, config_.rack_latency_us, mhz);
    lb.nic(config_.clients + k).SetReceiveHandler([this, k](hw::Packet p) {
      OnServerFrame(k, std::move(p));
    });
  }
}

void Topology::WireDirect() {
  const uint32_t mhz = config_.machine.cost.cpu_mhz;
  for (uint32_t j = 0; j < config_.clients; ++j) {
    const uint32_t k = server_for_client(j);
    cluster_.Connect(shard_of(server_id(k)), &server(k).nic(server_nic_for_client(j)),
                     shard_of(client_id(j)), &client(j).nic(0),
                     config_.client_mbit_per_s, config_.client_latency_us, mhz);
  }
}

uint64_t Topology::FlowKey(const hw::Packet& p) const {
  uint16_t port = LoadLe16(p, net::kOffSrcPort);
  if (p.bytes[net::kOffProto] == net::kProtoTcp &&
      p.bytes.size() >= net::kIpHeaderBytes + net::kTcpHeaderBytes) {
    port = LoadLe16(p, net::kIpHeaderBytes);  // real TCP source port
  }
  return (static_cast<uint64_t>(LoadLe32(p, net::kOffSrcIp)) << 16) | port;
}

uint32_t Topology::PickBackend() {
  for (uint32_t i = 0; i < config_.servers; ++i) {
    const uint32_t k = (lb_next_backend_ + i) % config_.servers;
    if (lb_health_.empty() || !lb_health_[k].ejected) {
      lb_next_backend_ = (k + 1) % config_.servers;
      return k;
    }
  }
  return kNoBackend;
}

void Topology::EvictPin(uint64_t flow, bool reroute_expected) {
  if (lb_flows_.erase(flow) == 0) {
    return;
  }
  ++*lb_pins_evicted_;
  if (reroute_expected) {
    pending_reroute_.insert(flow);
  }
}

void Topology::ForwardFromClient(uint32_t client_nic, hw::Packet p) {
  if (p.bytes.size() < kMinRoutable) {
    ++*lb_no_route_;
    return;
  }
  // Pin the flow (src ip, src port) to a backend round-robin on first sight,
  // so every segment of a connection reaches the same server. Fresh pins skip
  // ejected backends; existing pins are honored as-is — with health checks
  // disabled a pinned flow keeps routing to a dead backend (the blackhole
  // bench/failover demonstrates).
  const uint64_t flow = FlowKey(p);
  auto it = lb_flows_.find(flow);
  if (it == lb_flows_.end()) {
    const uint32_t backend = PickBackend();
    if (backend == kNoBackend) {
      ++*lb_no_route_;
      return;
    }
    it = lb_flows_.emplace(flow, FlowPin{backend, 0, false}).first;
    if (pending_reroute_.erase(flow) != 0) {
      ++*lb_failover_reroutes_;
    }
  }
  FlowPin& pin = it->second;
  const uint32_t backend = pin.backend;

  // Track the client's close so the pin table doesn't accumulate dead flows
  // (stale pins would also mis-route a reused source port after a failover).
  // RST tears the pin down immediately; FIN starts an epoch-guarded linger so
  // the rest of the close handshake still reaches the pinned backend.
  constexpr uint32_t kFlagsOff = net::kIpHeaderBytes + 12;
  bool evict_now = false;
  if (p.bytes[net::kOffProto] == net::kProtoTcp && p.bytes.size() > kFlagsOff) {
    const uint8_t flags = p.bytes[kFlagsOff];
    if ((flags & net::kFlagRst) != 0) {
      evict_now = true;
    } else if ((flags & net::kFlagFin) != 0) {
      if (!pin.closing) {
        pin.closing = true;
        const uint64_t epoch = ++pin.close_epoch;
        const sim::Cycles linger = static_cast<sim::Cycles>(
            config_.lb_pin_linger_us * config_.machine.cost.cpu_mhz);
        engine_of(0).ScheduleAfter(linger, [this, flow, epoch] {
          auto fit = lb_flows_.find(flow);
          if (fit != lb_flows_.end() && fit->second.closing &&
              fit->second.close_epoch == epoch) {
            EvictPin(flow, /*reroute_expected=*/false);
          }
        });
      }
    } else if (pin.closing && (flags & net::kFlagAck) == 0) {
      // Non-close traffic (e.g. a reused source port's SYN) revives the pin;
      // the pending eviction sees a bumped epoch and stands down.
      pin.closing = false;
      ++pin.close_epoch;
    }
  }

  (void)client_nic;
  hw::Nic* out = &balancer().nic(config_.clients + backend);
  const sim::Cycles done = lb_cpu_->Occupy(config_.lb_forward_cost);
  ++*lb_forwarded_;
  engine_of(0).ScheduleAt(done, [out, p = std::move(p)]() mutable {
    out->Transmit(std::move(p));
  });
  if (evict_now) {
    EvictPin(flow, /*reroute_expected=*/false);
  }
}

void Topology::OnServerFrame(uint32_t backend, hw::Packet p) {
  // Probe echoes (hw::kProbeProto) are balancer-internal liveness traffic;
  // everything else forwards to the addressed client.
  if (!p.bytes.empty() && p.bytes[0] == hw::kProbeProto &&
      p.bytes.size() >= hw::kProbeFrameBytes) {
    if (backend < lb_health_.size()) {
      uint64_t seq = 0;
      for (uint32_t i = 0; i < 8; ++i) {
        seq |= static_cast<uint64_t>(p.bytes[9 + i]) << (8 * i);
      }
      BackendHealth& h = lb_health_[backend];
      if (seq > h.last_reply_seq) {
        h.last_reply_seq = seq;
      }
      h.strikes = 0;
      if (h.ejected) {
        ++h.successes;
        if (h.successes >= config_.health.rise) {
          Readmit(backend);
        }
      }
    }
    return;
  }
  ForwardFromServer(std::move(p));
}

void Topology::ForwardFromServer(hw::Packet p) {
  if (p.bytes.size() < kMinRoutable) {
    ++*lb_no_route_;
    return;
  }
  // Replies carry the client's address as destination; client ips are 1-based
  // NIC indices on the balancer.
  const uint32_t dst_ip = LoadLe32(p, net::kOffDstIp);
  if (dst_ip < 1 || dst_ip > config_.clients) {
    ++*lb_no_route_;
    return;
  }
  hw::Nic* out = &balancer().nic(dst_ip - 1);
  const sim::Cycles done = lb_cpu_->Occupy(config_.lb_forward_cost);
  ++*lb_forwarded_;
  engine_of(0).ScheduleAt(done, [out, p = std::move(p)]() mutable {
    out->Transmit(std::move(p));
  });
}

void Topology::ArmHealthChecks(sim::Cycles until) {
  EXO_CHECK(has_balancer());
  EXO_CHECK(config_.servers > 0);
  const uint32_t mhz = config_.machine.cost.cpu_mhz;
  health_until_ = until;
  health_interval_ = static_cast<sim::Cycles>(config_.health.interval_us * mhz);
  health_timeout_ = static_cast<sim::Cycles>(config_.health.timeout_us * mhz);
  EXO_CHECK(health_interval_ > 0);
  if (!lb_trace_track_made_) {
    lb_trace_track_ = balancer().tracer().NewTrack("lb");
    lb_trace_track_made_ = true;
  }
  lb_health_.assign(config_.servers, BackendHealth{});
  for (uint32_t k = 0; k < config_.servers; ++k) {
    lb_health_[k].rng = sim::Rng(cluster_.DeriveSeed(10'000 + k));
    // The probe responder is NIC firmware on the backend: it echoes while the
    // NIC is up and stays silent when the machine is dead, below any software
    // the kill tears down.
    server(k).nic(0).EnableProbeResponder();
    ScheduleProbe(k);
  }
}

void Topology::ScheduleProbe(uint32_t backend) {
  // Seeded jitter: probes land in interval * (1 +/- jitter_frac), so backends
  // don't probe in lockstep yet every run with one seed is bit-identical.
  BackendHealth& h = lb_health_[backend];
  sim::Cycles delay = health_interval_;
  const double frac = config_.health.jitter_frac;
  if (frac > 0) {
    const sim::Cycles span = static_cast<sim::Cycles>(
        static_cast<double>(health_interval_) * (frac < 1.0 ? frac : 1.0));
    if (span > 0) {
      delay = health_interval_ - span + h.rng.Below(2 * span + 1);
    }
  }
  const sim::Cycles when = engine_of(0).now() + delay;
  if (when > health_until_) {
    return;  // disarmed: past the horizon, stop rescheduling
  }
  engine_of(0).ScheduleAt(when, [this, backend] {
    SendProbe(backend);
    ScheduleProbe(backend);
  });
}

void Topology::SendProbe(uint32_t backend) {
  BackendHealth& h = lb_health_[backend];
  const uint64_t seq = ++h.probes_sent;
  hw::Packet p;
  p.bytes.assign(hw::kProbeFrameBytes, 0);
  p.bytes[0] = hw::kProbeProto;
  // Prober address 0 (the balancer), destination the VIP the backend answers.
  for (uint32_t i = 0; i < 4; ++i) {
    p.bytes[5 + i] = static_cast<uint8_t>((kVip >> (8 * i)) & 0xff);
  }
  for (uint32_t i = 0; i < 8; ++i) {
    p.bytes[9 + i] = static_cast<uint8_t>((seq >> (8 * i)) & 0xff);
  }
  balancer().nic(config_.clients + backend).Transmit(std::move(p));
  engine_of(0).ScheduleAfter(health_timeout_, [this, backend, seq] {
    if (lb_health_[backend].last_reply_seq < seq) {
      OnProbeMiss(backend);
    }
  });
}

void Topology::OnProbeMiss(uint32_t backend) {
  BackendHealth& h = lb_health_[backend];
  h.successes = 0;
  if (h.ejected) {
    return;
  }
  ++h.strikes;
  if (h.strikes >= config_.health.fall) {
    Eject(backend);
  }
}

void Topology::Eject(uint32_t backend) {
  BackendHealth& h = lb_health_[backend];
  h.ejected = true;
  h.strikes = 0;
  h.successes = 0;
  h.last_eject_time = engine_of(0).now();
  ++*lb_ejected_;
  trace::Tracer& t = balancer().tracer();
  if (t.enabled(trace::Category::kFault)) {
    t.Instant(trace::Category::kFault, lb_trace_track_, "lb_eject",
              engine_of(0).now(), backend);
  }
  // Failover: cut every flow pinned to the dead backend loose so its next
  // frame re-pins (round-robin over survivors) and counts as a reroute.
  std::vector<uint64_t> doomed;
  for (const auto& [flow, pin] : lb_flows_) {
    if (pin.backend == backend) {
      doomed.push_back(flow);
    }
  }
  for (uint64_t flow : doomed) {
    EvictPin(flow, /*reroute_expected=*/true);
  }
}

void Topology::Readmit(uint32_t backend) {
  BackendHealth& h = lb_health_[backend];
  h.ejected = false;
  h.strikes = 0;
  h.successes = 0;
  h.last_readmit_time = engine_of(0).now();
  ++*lb_readmitted_;
  trace::Tracer& t = balancer().tracer();
  if (t.enabled(trace::Category::kFault)) {
    t.Instant(trace::Category::kFault, lb_trace_track_, "lb_readmit",
              engine_of(0).now(), backend);
  }
}

sim::FaultInjector* Topology::MachineFaultInjector(uint32_t id) {
  auto& slot = machine_faults_[id];
  if (slot == nullptr) {
    sim::FaultPlan plan;
    plan.seed = cluster_.DeriveSeed(20'000 + id);
    slot = std::make_unique<sim::FaultInjector>(plan);
    slot->AttachCounters(&machine(id).counters());
    slot->AttachTracer(&machine(id).tracer(), &engine_of(id));
  }
  return slot.get();
}

void Topology::ApplyMachineSchedule(const std::vector<sim::MachineEvent>& schedule) {
  for (const sim::MachineEvent& e : schedule) {
    EXO_CHECK(e.machine < machines_.size());
    sim::FaultInjector* inj = MachineFaultInjector(static_cast<uint32_t>(e.machine));
    engine_of(static_cast<uint32_t>(e.machine)).ScheduleAt(e.time, [this, e, inj] {
      const uint32_t id = static_cast<uint32_t>(e.machine);
      inj->RecordMachine(e);
      if (e.kind == 'k') {
        machine(id).Kill();
        if (on_kill_) {
          on_kill_(id);
        }
      } else {
        machine(id).Reboot();
        if (on_reboot_) {
          on_reboot_(id);
        }
      }
    });
  }
}

std::string Topology::MergedCountersDump() const {
  std::string out;
  for (const auto& m : machines_) {
    for (const auto& [name, value] : m->counters().Snapshot()) {
      out += name;
      out += ' ';
      out += std::to_string(value);
      out += '\n';
    }
  }
  return out;
}

std::string Topology::MergedTraceDump(uint32_t cpu_mhz) const {
  std::vector<const trace::Tracer*> tracers;
  tracers.reserve(machines_.size());
  for (const auto& m : machines_) {
    tracers.push_back(&m->tracer());
  }
  return trace::MergedTextDump(tracers, cpu_mhz);
}

}  // namespace exo::cluster
