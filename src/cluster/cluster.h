// Cluster: N simulated machines, each (or each group) on its own event queue,
// advanced in parallel under a conservative lookahead-window protocol.
//
// The single-machine world shares one sim::Engine; a Cluster instead gives
// every shard its own Engine and synchronizes them at the wire-latency
// horizon, the classic conservative PDES scheme (LiveStack shards full-stack
// machines the same way): because every cross-shard packet rides a link with
// latency >= lookahead, a shard executing events in [tmin, tmin + lookahead)
// can never receive a message timestamped inside that window — every send in
// the window happens at local time >= tmin and lands at >= tmin + lookahead.
// Rounds therefore run as: compute the global minimum next-event time tmin,
// let every shard execute its events with timestamp < tmin + lookahead in
// parallel, barrier, deliver the cross-shard packets that accumulated in the
// per-shard mailboxes, repeat.
//
// Determinism contract (docs/CLUSTER.md): same seed => bit-identical
// counters, traces, and bench output regardless of thread count.
//   - The round/horizon sequence depends only on event timestamps, never on
//     thread scheduling.
//   - Each shard's execution inside a window is single-threaded and
//     deterministic; a shard's state is touched only by the thread running it.
//   - Cross-shard messages are stamped (arrival time, source shard, per-source
//     send seq) and sorted by that key before insertion at the receiving
//     shard, so same-timestamp arrivals tie-break identically no matter which
//     thread produced them first in wall-clock time.
//   - Mailboxes are single-writer single-reader by construction: slot
//     [dst][src] is appended only by the thread running shard src during a
//     window and drained only by the thread running shard dst after the
//     barrier. No locks touch the packet path.
#ifndef EXO_CLUSTER_CLUSTER_H_
#define EXO_CLUSTER_CLUSTER_H_

#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "hw/nic.h"
#include "sim/check.h"
#include "sim/engine.h"

namespace exo::cluster {

inline constexpr sim::Cycles kNever = std::numeric_limits<sim::Cycles>::max();

// Deterministic per-machine seed derivation: one splitmix64 step over the
// cluster seed and the machine's stream id. Machines draw from disjoint,
// reproducible streams no matter how shards are grouped or threaded.
inline uint64_t DeriveSeed(uint64_t cluster_seed, uint64_t stream) {
  uint64_t z = cluster_seed + 0x9e3779b97f4a7c15ULL * (stream + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

class Cluster;

// hw::Link generalized across shards. Each direction serializes frames at the
// wire rate against its *sender's* shard clock (the wire model is unchanged);
// the arrival is posted to the receiving shard's mailbox instead of being
// scheduled on the sender's engine, and materializes there as a timestamped
// event at the next horizon. Latency is clamped to >= 1 cycle: a zero-latency
// cross-shard wire would leave the conservative protocol no lookahead window.
//
// Fault injection and wire tracing are *per direction*: a direction's state is
// consulted only from its sender's shard thread, so arming each direction with
// its sender machine's injector/tracer keeps the packet path lock-free (one
// injector shared by both directions would race across threads — use the
// ...For variants, not the base-class setters, on cross-shard links).
class ShardLink : public hw::Link {
 public:
  sim::Cycles Send(hw::Nic* from, hw::Packet p) override;
  sim::Engine* engine_for(const hw::Nic* side) const override;

  sim::Cycles latency_cycles() const { return latency_cycles_; }

  // Arms drop/corrupt/duplicate injection for the direction whose *sender* is
  // `sender` (one of the two connected NICs). Call after Connect. The injector
  // is also wired to this direction's tracer, when attached, so injected fates
  // land on the sender's timeline (first-wins, like hw::Link).
  void SetFaultInjectorFor(const hw::Nic* sender, sim::FaultInjector* faults);
  // Attaches wire-occupancy tracing (`net` spans + arrival instants) for the
  // direction whose sender is `sender`, on a track named `name`. The tracer
  // must belong to the sender's machine: its events are stamped with the
  // sender's shard clock and merged under that machine's prefix.
  void AttachTracerFor(const hw::Nic* sender, trace::Tracer* tracer,
                       const std::string& name);

 private:
  friend class Cluster;
  ShardLink(Cluster* cluster, uint32_t shard_a, uint32_t shard_b,
            double mbit_per_s, double latency_us, uint32_t cpu_mhz);

  // Per-direction fault/trace state, touched only by the sender's thread.
  struct DirState {
    sim::FaultInjector* faults = nullptr;
    trace::Tracer* tracer = nullptr;
    uint32_t track = 0;
  };

  Cluster* cluster_;
  uint32_t shard_a_;
  uint32_t shard_b_;
  DirState dir_state_ab_;  // sender == a_
  DirState dir_state_ba_;  // sender == b_
};

struct ClusterOptions {
  // OS threads executing shard windows. Shard k runs on thread k % threads in
  // ascending shard order, so the assignment is deterministic; 1 runs every
  // window inline with no pool. Behavior is bit-identical for any value.
  uint32_t threads = 1;
  // Root seed; per-machine seeds derive from it via DeriveSeed.
  uint64_t seed = 1;
};

class Cluster {
 public:
  explicit Cluster(const ClusterOptions& options = {});
  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  // Creates a shard (one event queue + clock). Shards and links must be set up
  // before the first Run/RunUntil.
  uint32_t AddShard(std::string name);
  size_t num_shards() const { return shards_.size(); }
  sim::Engine& engine(uint32_t shard) { return *shards_[shard]->engine; }
  const std::string& shard_name(uint32_t shard) const { return shards_[shard]->name; }

  uint64_t seed() const { return seed_; }
  uint64_t DeriveSeed(uint64_t stream) const {
    return cluster::DeriveSeed(seed_, stream);
  }

  // Wires two NICs together. Different shards: a ShardLink through the
  // conservative fabric (latency clamped to >= 1 cycle). Same shard: a plain
  // hw::Link on that shard's engine — machine groups colocated on one shard
  // keep the exact single-engine wire semantics. The cluster owns the link.
  hw::Link* Connect(uint32_t shard_a, hw::Nic* a, uint32_t shard_b, hw::Nic* b,
                    double mbit_per_s, double latency_us, uint32_t cpu_mhz = 200);

  // Runs conservative rounds until no shard has a pending event and every
  // mailbox is drained.
  void Run() { RunLoop(kNever); }
  // Runs all events with timestamp <= t, then sets every shard clock to
  // exactly t (the cluster-wide analogue of Engine::RunUntil).
  void RunUntil(sim::Cycles t);

  // The conservative window: the minimum cross-shard link latency, in cycles.
  // kNever when no cross-shard links exist (fully independent shards run to
  // completion in one round).
  sim::Cycles lookahead() const { return lookahead_; }
  uint32_t threads() const { return threads_; }
  uint64_t rounds() const { return rounds_; }
  uint64_t cross_messages() const;

 private:
  friend class ShardLink;

  // One cross-shard packet in flight between windows.
  struct CrossMsg {
    sim::Cycles arrival;
    uint32_t src_shard;
    uint64_t seq;  // per-source-shard send order
    hw::Nic* nic;
    hw::Packet packet;
  };

  struct Shard {
    std::unique_ptr<sim::Engine> engine;
    std::string name;
    uint64_t next_msg_seq = 1;
    uint64_t messages_in = 0;
    sim::Cycles next_event = kNever;
    // inbox[src]: written only by the thread running shard src during a
    // window, drained only by this shard's thread after the barrier.
    std::vector<std::vector<CrossMsg>> inbox;
    std::vector<CrossMsg> drain_scratch;
  };

  // Called from the sending shard's thread (ShardLink::Send).
  void Post(uint32_t dst_shard, CrossMsg msg);
  // Inserts this shard's sorted mailbox into its engine and refreshes
  // next_event. Runs on the thread owning the shard.
  void DrainShard(uint32_t shard);
  void RunWindow(uint32_t shard, sim::Cycles horizon);
  void RunLoop(sim::Cycles deadline);

  uint32_t threads_;
  uint64_t seed_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::unique_ptr<hw::Link>> links_;
  sim::Cycles lookahead_ = kNever;
  sim::Cycles deadline_ = kNever;
  uint64_t rounds_ = 0;
  bool running_ = false;

  // Round state shared with workers; written only in barrier completion or
  // before the pool starts, so barrier ordering publishes it.
  sim::Cycles horizon_ = 0;
  bool done_ = false;
};

}  // namespace exo::cluster

#endif  // EXO_CLUSTER_CLUSTER_H_
